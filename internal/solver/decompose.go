package solver

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"waitfree/internal/tasks"
	"waitfree/internal/topology"
)

// Independent decomposition. A simplex is a clique of the 1-skeleton, so
// every constraint (binary or higher) lives entirely inside one connected
// component of the constraint graph over the remaining (post-collapse)
// vertices. The level therefore splits into independent subproblems: a
// decision map exists iff every component admits one, and the assignments
// compose by disjoint union. Components are searched independently — fanned
// out over the worker pool via parallelRange, the first time the search
// itself (not just precompute) parallelizes — and each component's search
// is sequential and deterministic, so verdicts and node counts are
// identical at any Workers value.

// component is one independent subproblem: its vertices in search order and
// the higher-dimensional (dim ≥ 2) check schedule, indexed by position in
// that order. Binary constraints are handled by forward checking; singleton
// constraints were folded into the domains.
type component struct {
	order  []int
	checks [][]checkItem
}

// compOutcome is one component's deterministic search result.
type compOutcome struct {
	solvable bool
	nodes    int64
	err      error
}

// components splits the remaining vertices into connected components of the
// 1-skeleton (isolated vertices form their own components), each with a
// min-domain depth-first search order and its check schedule. Ordered by
// smallest contained vertex, so the split is deterministic.
func (st *searchState) components(remaining []bool) []*component {
	nv := len(st.vals)
	comp := make([]int, nv)
	for v := range comp {
		comp[v] = -1
	}
	var groups [][]int
	for v := 0; v < nv; v++ {
		if !remaining[v] || comp[v] >= 0 {
			continue
		}
		id := len(groups)
		stack := []int{v}
		comp[v] = id
		var members []int
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, x)
			for _, nr := range st.adj[x] {
				if comp[nr.nbr] < 0 {
					comp[nr.nbr] = id
					stack = append(stack, nr.nbr)
				}
			}
		}
		sort.Ints(members)
		groups = append(groups, members)
	}

	out := make([]*component, len(groups))
	pos := make([]int, nv)
	for id, members := range groups {
		c := &component{order: st.orderComponent(members)}
		for p, v := range c.order {
			pos[v] = p
		}
		c.checks = make([][]checkItem, len(c.order))
		out[id] = c
	}
	// Schedule each dim ≥ 2 simplex whose vertices all remain at the
	// position (within its component's order) where its last vertex is
	// assigned. Dim 0 is folded into domains, dim 1 into forward checking.
	for i, s := range st.flat {
		if st.dims[i] < 2 {
			continue
		}
		id, last, ok := -1, -1, true
		for _, v := range s {
			if !remaining[v] {
				ok = false
				break
			}
			id = comp[int(v)]
			if pos[v] > last {
				last = pos[v]
			}
		}
		if ok {
			out[id].checks[last] = append(out[id].checks[last], checkItem{simplex: s, carrier: st.carriers[i]})
		}
	}
	return out
}

// orderComponent orders one component's vertices for the backtracking
// search: depth-first over the adjacency, seeded at the most constrained
// vertex, visiting neighbors by ascending current domain size (then index).
// Like searchOrder, but on post-propagation domain counts — the AC-3 pass
// typically leaves corner chains as singletons, which the ordering then
// assigns first.
func (st *searchState) orderComponent(members []int) []int {
	sorted := make(map[int][]int, len(members))
	for _, v := range members {
		ns := make([]int, 0, len(st.adj[v]))
		for _, nr := range st.adj[v] {
			ns = append(ns, nr.nbr)
		}
		sort.Slice(ns, func(i, j int) bool {
			if st.count[ns[i]] != st.count[ns[j]] {
				return st.count[ns[i]] < st.count[ns[j]]
			}
			return ns[i] < ns[j]
		})
		sorted[v] = ns
	}
	visited := make(map[int]bool, len(members))
	order := make([]int, 0, len(members))
	var dfs func(v int)
	dfs = func(v int) {
		visited[v] = true
		order = append(order, v)
		for _, u := range sorted[v] {
			if !visited[u] {
				dfs(u)
			}
		}
	}
	for len(order) < len(members) {
		seed := -1
		for _, v := range members {
			if !visited[v] && (seed < 0 || st.count[v] < st.count[seed]) {
				seed = v
			}
		}
		dfs(seed)
	}
	return order
}

// searchComponent runs the forward-checking backtracking search on one
// component. Assignments land in st.assign/st.assigned (component vertex
// sets are disjoint, so parallel searches never collide); domain pruning is
// undone via the local trail, so on return the active masks are exactly as
// propagation left them whether or not a map was found.
func (st *searchState) searchComponent(ctx context.Context, c *component, maxNodes int64) compOutcome {
	var (
		nodes   int64
		trail   []trailEntry
		scratch []topology.Vertex
	)
	n := len(c.order)
	var dfs func(p int) (bool, error)
	dfs = func(p int) (bool, error) {
		if p == n {
			return true, nil
		}
		v := c.order[p]
		for i, w := range st.vals[v] {
			if !st.active[v][i] {
				continue
			}
			nodes++
			if nodes > maxNodes {
				return false, ErrBudget
			}
			if nodes&(cancelCheckInterval-1) == 0 {
				if cerr := ctx.Err(); cerr != nil {
					return false, fmt.Errorf("%w: %w", ErrCanceled, cerr)
				}
			}
			st.assign[v] = w
			st.assigned[v] = true
			if consistent(st.task, c.checks[p], st.assign, &scratch) {
				mark, ok := st.forwardCheck(v, i, &trail)
				if ok {
					found, err := dfs(p + 1)
					if found || err != nil {
						return found, err
					}
				}
				st.undo(&trail, mark)
			}
			st.assigned[v] = false
		}
		return false, nil
	}
	found, err := dfs(0)
	if found {
		// Leave the solution assigned for composition; re-mark the
		// vertices (the last dfs frames cleared flags on unwind only when
		// backtracking, but mark explicitly for clarity and safety).
		for _, v := range c.order {
			st.assigned[v] = true
		}
	}
	// A found solution leaves its forward-checking prunes on the trail;
	// rewind so the active masks return to the propagation fixpoint (the
	// restore phase reads eliminated vertices' domains, which forward
	// checking never touched, but keeping the invariant tight is cheap).
	st.undo(&trail, 0)
	return compOutcome{solvable: found, nodes: nodes, err: err}
}

// searchComponents searches every component (in parallel when Workers > 1)
// and composes the outcome deterministically: the reported node count sums
// component counts in component order up to and including the first
// component that failed or errored — exactly what a sequential
// short-circuiting search would have reported — so node counts are
// reproducible run-to-run regardless of scheduling.
func (st *searchState) searchComponents(ctx context.Context, comps []*component, maxNodes int64, workers int) (solvable bool, nodes int64, compNodes []int64, err error) {
	outcomes := make([]compOutcome, len(comps))
	parallelRange(len(comps), workers, func(i int) {
		outcomes[i] = st.searchComponent(ctx, comps[i], maxNodes)
	})
	solvable = true
	stop := len(comps) - 1
	for i, o := range outcomes {
		if o.err != nil || !o.solvable {
			stop = i
			solvable = false
			err = o.err
			break
		}
	}
	var total int64
	for i := 0; i <= stop; i++ {
		compNodes = append(compNodes, outcomes[i].nodes)
		total += outcomes[i].nodes
	}
	if err == nil && total > maxNodes {
		err = ErrBudget
	}
	return solvable, total, compNodes, err
}

// solveStructured is the structured engine's driver: propagate, collapse,
// decompose, search, restore — with a verified fallback that re-runs the
// level without collapse if restoring eliminated vertices ever fails, so
// collapse can never change a verdict.
func solveStructured(ctx context.Context, task *tasks.Task, sub *topology.Complex, domains [][]topology.Vertex, opts Options, maxNodes int64, res *Result) error {
	err := solveStructuredOnce(ctx, task, sub, domains, opts, maxNodes, res, opts.NoCollapse)
	if err == nil || !errors.Is(err, errRestoreFailed) {
		return err
	}
	// Restoration failed: the reduced problem was solvable but its
	// solution did not extend past a collapse. Re-search with collapse
	// disabled (propagation, decomposition, and forward checking are
	// complete, so this pass is exact); keep both passes' node counts —
	// the work was really done.
	prior := *res
	res.Stats = Stats{}
	if err := solveStructuredOnce(ctx, task, sub, domains, opts, maxNodes, res, true); err != nil {
		res.Nodes += prior.Nodes
		return err
	}
	res.Nodes += prior.Nodes
	res.Stats.CollapseFallback = true
	res.Stats.CollapsedVertices = prior.Stats.CollapsedVertices
	return nil
}

// errRestoreFailed is the internal signal that collapse restoration could
// not extend a reduced solution; solveStructured translates it into a
// collapse-free re-search, so it never escapes the package.
var errRestoreFailed = errors.New("solver: collapse restoration failed")

func solveStructuredOnce(ctx context.Context, task *tasks.Task, sub *topology.Complex, domains [][]topology.Vertex, opts Options, maxNodes int64, res *Result, noCollapse bool) error {
	st := newSearchState(task, sub, domains, opts.Workers)
	pruned, ok, err := st.propagate(ctx)
	res.Stats.PrunedValues = pruned
	if err != nil {
		return err
	}
	if !ok {
		res.Solvable = false // an emptied domain is an unsolvability proof
		return nil
	}

	remaining := make([]bool, len(st.vals))
	for v := range remaining {
		remaining[v] = true
	}
	var eliminated []int
	if !noCollapse {
		eliminated = st.collapse(remaining)
	}
	res.Stats.CollapsedVertices = len(eliminated)

	st.buildAdjacency(remaining)
	comps := st.components(remaining)
	res.Stats.Components = len(comps)

	solvable, nodes, compNodes, err := st.searchComponents(ctx, comps, maxNodes, opts.Workers)
	res.Nodes = nodes
	res.Stats.ComponentNodes = compNodes
	if err != nil {
		return err
	}
	if !solvable {
		res.Solvable = false
		return nil
	}

	if len(eliminated) > 0 {
		if !st.restore(eliminated) {
			return errRestoreFailed
		}
	}
	m := topology.NewSimplicialMap(sub, task.Outputs)
	copy(m.Image, st.assign)
	res.Solvable = true
	res.Map = m
	// Belt and braces around collapse: a restored map is re-validated
	// against the full Proposition 3.1 conditions; any discrepancy (none
	// is possible if restore checked every incident simplex, but the
	// collapse layer is new) falls back to the collapse-free search.
	if len(eliminated) > 0 {
		if verr := VerifyDecisionMap(task, res); verr != nil {
			res.Solvable = false
			res.Map = nil
			return errRestoreFailed
		}
	}
	return nil
}
