package solver

import (
	"fmt"

	"waitfree/internal/protocol"
	"waitfree/internal/tasks"
	"waitfree/internal/topology"
)

// Execute runs a solvable task for real: the decision map δ : SDS^b(I) → O
// found by the checker is compiled into a distributed protocol — every
// process runs b rounds of the iterated immediate snapshot full-information
// protocol starting from its input vertex and decides δ(final view). This is
// the constructive content of the paper's characterization: solvability
// verdicts are not just certificates, they are runnable programs.
//
// inputs[i] is process i's input vertex in task.Inputs (the vertex must have
// color i, and the tuple must be an input simplex). crashAfter[i] ≥ 0 stops
// process i after that many rounds. The returned slice has the decided
// output vertex per process, or −1 for processes that crashed before
// deciding.
func Execute(task *tasks.Task, res *Result, inputs []topology.Vertex, crashAfter []int) ([]topology.Vertex, error) {
	if !res.Solvable || res.Map == nil {
		return nil, fmt.Errorf("solver: cannot execute an unsolvable result")
	}
	if len(inputs) != task.Procs {
		return nil, fmt.Errorf("solver: %d inputs for %d processes", len(inputs), task.Procs)
	}
	keys := make([]string, task.Procs)
	for i, v := range inputs {
		if int(v) < 0 || int(v) >= task.Inputs.NumVertices() {
			return nil, fmt.Errorf("solver: input %d out of range", v)
		}
		if task.Inputs.Color(v) != i {
			return nil, fmt.Errorf("solver: input vertex %d has color %d, want %d", v, task.Inputs.Color(v), i)
		}
		keys[i] = task.Inputs.Key(v)
	}
	if !task.Inputs.HasSimplex(dedupe(append([]topology.Vertex(nil), inputs...))) {
		return nil, fmt.Errorf("solver: inputs %v are not an input simplex", inputs)
	}

	run, err := protocol.RunFullInfoWithInputs(keys, res.Level, crashAfter)
	if err != nil {
		return nil, err
	}
	out := make([]topology.Vertex, task.Procs)
	for i := range out {
		out[i] = -1
	}
	for i, key := range run.Keys {
		if key == "" {
			continue
		}
		v, ok := res.Subdivision.VertexByKey(key)
		if !ok {
			return nil, fmt.Errorf("solver: P%d view %q is not a vertex of SDS^%d(I)", i, key, res.Level)
		}
		out[i] = res.Map.Image[v]
	}
	return out, nil
}

// ValidateExecution checks a run's outputs against the task: the finishers'
// decisions span a simplex of the output complex, each process decided a
// vertex of its own color, and the decisions are allowed for the
// participants' input simplex. participating lists the processes that took
// at least one step (crashed-before-start processes are excluded from the
// carrier).
func ValidateExecution(task *tasks.Task, inputs []topology.Vertex, outputs []topology.Vertex, participating []int) error {
	var inSimplex []topology.Vertex
	for _, p := range participating {
		inSimplex = append(inSimplex, inputs[p])
	}
	var outSimplex []topology.Vertex
	for p, w := range outputs {
		if w < 0 {
			continue
		}
		if task.Outputs.Color(w) != p {
			return fmt.Errorf("solver: P%d decided a vertex of color %d", p, task.Outputs.Color(w))
		}
		outSimplex = append(outSimplex, w)
	}
	if len(outSimplex) == 0 {
		return nil
	}
	outSimplex = dedupe(outSimplex)
	if !task.Outputs.HasSimplex(outSimplex) {
		return fmt.Errorf("solver: decisions %v do not span an output simplex", outSimplex)
	}
	if len(inSimplex) == 0 {
		return fmt.Errorf("solver: decisions exist but no process participated")
	}
	if !task.Allowed(dedupe(inSimplex), outSimplex) {
		return fmt.Errorf("solver: decisions %v not allowed for participating inputs %v", outSimplex, inSimplex)
	}
	return nil
}
