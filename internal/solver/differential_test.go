// Package solver_test (external) so the harness can import internal/engine
// — which itself imports solver — without a cycle: the differential below
// round-trips arena-built subdivisions through the engine's DTO codec (an
// explicit, string-keyed reconstruction) and requires the search to be
// bit-identical on both representations.
package solver_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"waitfree/internal/engine"
	"waitfree/internal/solver"
	"waitfree/internal/tasks"
	"waitfree/internal/topology"
)

// TestE6VerdictTable pins the full EXPERIMENTS.md E6 verdict table: each
// task's solvability verdict and level must come out exactly as the theory
// demands, on the arena-backed subdivision path. Any representation bug
// that changes carriers, colors, or the facet structure flips one of these
// verdicts.
func TestE6VerdictTable(t *testing.T) {
	cases := []struct {
		name     string
		task     *tasks.Task
		maxLevel int
		solvable bool
		level    int // checked only when solvable
	}{
		{"identity-3p", tasks.IdentityTask(3), 0, true, 0},
		{"set-consensus-3-3", tasks.SetConsensus(3, 3), 0, true, 0},
		{"renaming-2p-M3", tasks.Renaming(2, 3), 0, true, 0},
		{"approx-agreement-1/2", tasks.ApproxAgreement(2), 2, true, 1},
		{"approx-agreement-1/4", tasks.ApproxAgreement(4), 2, true, 2},
		{"binary-consensus-2p", tasks.Consensus(2), 3, false, 0},
		{"binary-consensus-3p", tasks.Consensus(3), 1, false, 0},
		{"set-consensus-3-2", tasks.SetConsensus(3, 2), 1, false, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := solver.SolveUpTo(tc.task, tc.maxLevel, solver.Options{})
			if err != nil {
				t.Fatalf("SolveUpTo: %v", err)
			}
			if res.Solvable != tc.solvable {
				t.Fatalf("solvable = %v, want %v", res.Solvable, tc.solvable)
			}
			if tc.solvable {
				if res.Level != tc.level {
					t.Errorf("solved at level %d, want %d", res.Level, tc.level)
				}
				if err := solver.VerifyDecisionMap(tc.task, res); err != nil {
					t.Errorf("VerifyDecisionMap: %v", err)
				}
			}
		})
	}
}

// TestE6DifferentialStructuredVsExhaustive cross-checks the structured
// engine against the exhaustive oracle on every level of the E6 table that
// the oracle can finish: verdicts must match exactly, every solvable result
// must pass VerifyDecisionMap, and the structured node count must never
// exceed the oracle's (forward checking explores a subset of the plain
// backtracking's nodes; propagation and decomposition only shrink it
// further).
func TestE6DifferentialStructuredVsExhaustive(t *testing.T) {
	cases := []struct {
		task *tasks.Task
		b    int
	}{
		{tasks.IdentityTask(3), 0},
		{tasks.SetConsensus(3, 3), 0},
		{tasks.Renaming(2, 3), 0},
		{tasks.ApproxAgreement(2), 0},
		{tasks.ApproxAgreement(2), 1},
		{tasks.ApproxAgreement(4), 1},
		{tasks.ApproxAgreement(4), 2},
		{tasks.Consensus(2), 0},
		{tasks.Consensus(2), 1},
		{tasks.Consensus(2), 2},
		{tasks.Consensus(2), 3},
		{tasks.Consensus(3), 0},
		{tasks.Consensus(3), 1},
		{tasks.SetConsensus(3, 2), 0},
		{tasks.SetConsensus(3, 2), 1},
	}
	ctx := context.Background()
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/b=%d", tc.task.Name, tc.b), func(t *testing.T) {
			sub := topology.SDSPow(tc.task.Inputs, tc.b)
			exh, err := solver.SolveAtLevelOn(ctx, tc.task, tc.b, sub, solver.Options{Engine: solver.EngineExhaustive})
			if err != nil {
				t.Fatalf("exhaustive: %v", err)
			}
			str, err := solver.SolveAtLevelOn(ctx, tc.task, tc.b, sub, solver.Options{})
			if err != nil {
				t.Fatalf("structured: %v", err)
			}
			if str.Solvable != exh.Solvable {
				t.Fatalf("verdicts differ: structured %v, exhaustive oracle %v", str.Solvable, exh.Solvable)
			}
			if str.Nodes > exh.Nodes {
				t.Errorf("structured explored %d nodes, oracle %d — pruning made the search LARGER", str.Nodes, exh.Nodes)
			}
			if str.Solvable {
				if err := solver.VerifyDecisionMap(tc.task, str); err != nil {
					t.Errorf("VerifyDecisionMap(structured): %v", err)
				}
			}
		})
	}
}

// TestRandomTasksDifferential fuzzes the differential over
// topology.RandomChromaticComplex inputs with randomized pairwise output
// constraints (monotone by construction: a face has fewer pairs than its
// coface). Seeded, so any failure is a reproducible case, not a flake. The
// bans drive a spread of solvable and unsolvable instances; both engines
// must agree on all of them, at level 0 and level 1.
func TestRandomTasksDifferential(t *testing.T) {
	ctx := context.Background()
	var solvableSeen, unsolvableSeen int
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		task := randomPairwiseTask(rng, seed)
		for b := 0; b <= 1; b++ {
			sub := topology.SDSPow(task.Inputs, b)
			exh, err := solver.SolveAtLevelOn(ctx, task, b, sub, solver.Options{Engine: solver.EngineExhaustive})
			if err != nil {
				t.Fatalf("seed %d b=%d exhaustive: %v", seed, b, err)
			}
			str, err := solver.SolveAtLevelOn(ctx, task, b, sub, solver.Options{})
			if err != nil {
				t.Fatalf("seed %d b=%d structured: %v", seed, b, err)
			}
			if str.Solvable != exh.Solvable {
				t.Fatalf("seed %d b=%d: verdicts differ: structured %v, oracle %v", seed, b, str.Solvable, exh.Solvable)
			}
			if str.Nodes > exh.Nodes {
				t.Errorf("seed %d b=%d: structured %d nodes > oracle %d", seed, b, str.Nodes, exh.Nodes)
			}
			if str.Solvable {
				solvableSeen++
				if err := solver.VerifyDecisionMap(task, str); err != nil {
					t.Errorf("seed %d b=%d: VerifyDecisionMap: %v", seed, b, err)
				}
			} else {
				unsolvableSeen++
			}
		}
	}
	// The fuzz only means something if it exercises both verdicts.
	if solvableSeen == 0 || unsolvableSeen == 0 {
		t.Fatalf("degenerate fuzz corpus: %d solvable, %d unsolvable", solvableSeen, unsolvableSeen)
	}
}

// randomPairwiseTask wraps a random chromatic input complex in a task whose
// outputs form a complete two-value chromatic complex over the input's
// colors and whose Δ bans a random set of cross-color output pairs.
func randomPairwiseTask(rng *rand.Rand, seed int64) *tasks.Task {
	inputs := topology.RandomChromaticComplex(rng)
	colors := inputs.Colors()

	out := topology.NewComplex()
	byColor := make(map[int][]topology.Vertex)
	for _, col := range colors {
		for val := 0; val < 2; val++ {
			v := out.MustAddVertex(fmt.Sprintf("o%d_%d", col, val), col)
			byColor[col] = append(byColor[col], v)
		}
	}
	// Facets: every one-value-per-color assignment, so every distinct-color
	// vertex set is a simplex and banning happens purely in Δ.
	var build func(i int, cur []topology.Vertex)
	build = func(i int, cur []topology.Vertex) {
		if i == len(colors) {
			out.MustAddSimplex(cur...)
			return
		}
		for _, v := range byColor[colors[i]] {
			build(i+1, append(cur, v))
		}
	}
	build(0, nil)
	outputs := out.Seal()

	// Ban density spans sparse (always satisfiable) to near-total (usually
	// not): with ≤3 colors there are at most 12 cross-color value pairs.
	banned := make(map[[2]topology.Vertex]bool)
	nBans := rng.Intn(13)
	for i := 0; i < nBans; i++ {
		ca, cb := colors[rng.Intn(len(colors))], colors[rng.Intn(len(colors))]
		if ca == cb {
			continue
		}
		a := byColor[ca][rng.Intn(2)]
		b := byColor[cb][rng.Intn(2)]
		if a > b {
			a, b = b, a
		}
		banned[[2]topology.Vertex{a, b}] = true
	}

	return &tasks.Task{
		Name:    fmt.Sprintf("random-pairwise-%d", seed),
		Procs:   len(colors),
		Inputs:  inputs,
		Outputs: outputs,
		Allowed: func(in, outS []topology.Vertex) bool {
			for i := 0; i < len(outS); i++ {
				for j := i + 1; j < len(outS); j++ {
					a, b := outS[i], outS[j]
					if a > b {
						a, b = b, a
					}
					if banned[[2]topology.Vertex{a, b}] {
						return false
					}
				}
			}
			return true
		},
	}
}

// TestSolverDifferentialDTORoundTrip runs the same search twice — once on
// the arena-built SDS^b(I), once on that complex rehydrated through the
// engine's JSON DTO codec (which reconstructs it through the explicit
// string-keyed path) — and requires identical verdicts AND identical node
// counts. Equal node counts mean the two representations present the exact
// same vertex order, domains, and simplex structure to the backtracking
// search, not merely isomorphic ones.
func TestSolverDifferentialDTORoundTrip(t *testing.T) {
	cases := []struct {
		task *tasks.Task
		b    int
	}{
		{tasks.Consensus(2), 1},
		{tasks.Consensus(2), 2},
		{tasks.ApproxAgreement(2), 1},
		{tasks.ApproxAgreement(4), 2},
		{tasks.SetConsensus(3, 2), 1},
	}
	ctx := context.Background()
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/b=%d", tc.task.Name, tc.b), func(t *testing.T) {
			sub := topology.SDSPow(tc.task.Inputs, tc.b)

			data, err := engine.EncodeComplexJSON(sub)
			if err != nil {
				t.Fatalf("EncodeComplexJSON: %v", err)
			}
			rehydrated, err := engine.DecodeComplexJSON(data)
			if err != nil {
				t.Fatalf("DecodeComplexJSON: %v", err)
			}
			if sub.CanonicalString() != rehydrated.CanonicalString() {
				t.Fatal("DTO round-trip changed the canonical encoding")
			}

			arena, err := solver.SolveAtLevelOn(ctx, tc.task, tc.b, sub, solver.Options{})
			if err != nil {
				t.Fatalf("SolveAtLevelOn(arena): %v", err)
			}
			explicit, err := solver.SolveAtLevelOn(ctx, tc.task, tc.b, rehydrated, solver.Options{})
			if err != nil {
				t.Fatalf("SolveAtLevelOn(rehydrated): %v", err)
			}
			if arena.Solvable != explicit.Solvable {
				t.Fatalf("verdicts differ: arena %v, rehydrated %v", arena.Solvable, explicit.Solvable)
			}
			if arena.Nodes != explicit.Nodes {
				t.Fatalf("node counts differ: arena %d, rehydrated %d — representations not search-identical",
					arena.Nodes, explicit.Nodes)
			}
			if arena.Solvable {
				if err := solver.VerifyDecisionMap(tc.task, arena); err != nil {
					t.Errorf("VerifyDecisionMap(arena): %v", err)
				}
				if err := solver.VerifyDecisionMap(tc.task, explicit); err != nil {
					t.Errorf("VerifyDecisionMap(rehydrated): %v", err)
				}
			}
		})
	}
}
