// Package solver_test (external) so the harness can import internal/engine
// — which itself imports solver — without a cycle: the differential below
// round-trips arena-built subdivisions through the engine's DTO codec (an
// explicit, string-keyed reconstruction) and requires the search to be
// bit-identical on both representations.
package solver_test

import (
	"context"
	"fmt"
	"testing"

	"waitfree/internal/engine"
	"waitfree/internal/solver"
	"waitfree/internal/tasks"
	"waitfree/internal/topology"
)

// TestE6VerdictTable pins the full EXPERIMENTS.md E6 verdict table: each
// task's solvability verdict and level must come out exactly as the theory
// demands, on the arena-backed subdivision path. Any representation bug
// that changes carriers, colors, or the facet structure flips one of these
// verdicts.
func TestE6VerdictTable(t *testing.T) {
	cases := []struct {
		name     string
		task     *tasks.Task
		maxLevel int
		solvable bool
		level    int // checked only when solvable
	}{
		{"identity-3p", tasks.IdentityTask(3), 0, true, 0},
		{"set-consensus-3-3", tasks.SetConsensus(3, 3), 0, true, 0},
		{"renaming-2p-M3", tasks.Renaming(2, 3), 0, true, 0},
		{"approx-agreement-1/2", tasks.ApproxAgreement(2), 2, true, 1},
		{"approx-agreement-1/4", tasks.ApproxAgreement(4), 2, true, 2},
		{"binary-consensus-2p", tasks.Consensus(2), 3, false, 0},
		{"binary-consensus-3p", tasks.Consensus(3), 1, false, 0},
		{"set-consensus-3-2", tasks.SetConsensus(3, 2), 1, false, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := solver.SolveUpTo(tc.task, tc.maxLevel, solver.Options{})
			if err != nil {
				t.Fatalf("SolveUpTo: %v", err)
			}
			if res.Solvable != tc.solvable {
				t.Fatalf("solvable = %v, want %v", res.Solvable, tc.solvable)
			}
			if tc.solvable {
				if res.Level != tc.level {
					t.Errorf("solved at level %d, want %d", res.Level, tc.level)
				}
				if err := solver.VerifyDecisionMap(tc.task, res); err != nil {
					t.Errorf("VerifyDecisionMap: %v", err)
				}
			}
		})
	}
}

// TestSolverDifferentialDTORoundTrip runs the same search twice — once on
// the arena-built SDS^b(I), once on that complex rehydrated through the
// engine's JSON DTO codec (which reconstructs it through the explicit
// string-keyed path) — and requires identical verdicts AND identical node
// counts. Equal node counts mean the two representations present the exact
// same vertex order, domains, and simplex structure to the backtracking
// search, not merely isomorphic ones.
func TestSolverDifferentialDTORoundTrip(t *testing.T) {
	cases := []struct {
		task *tasks.Task
		b    int
	}{
		{tasks.Consensus(2), 1},
		{tasks.Consensus(2), 2},
		{tasks.ApproxAgreement(2), 1},
		{tasks.ApproxAgreement(4), 2},
		{tasks.SetConsensus(3, 2), 1},
	}
	ctx := context.Background()
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/b=%d", tc.task.Name, tc.b), func(t *testing.T) {
			sub := topology.SDSPow(tc.task.Inputs, tc.b)

			data, err := engine.EncodeComplexJSON(sub)
			if err != nil {
				t.Fatalf("EncodeComplexJSON: %v", err)
			}
			rehydrated, err := engine.DecodeComplexJSON(data)
			if err != nil {
				t.Fatalf("DecodeComplexJSON: %v", err)
			}
			if sub.CanonicalString() != rehydrated.CanonicalString() {
				t.Fatal("DTO round-trip changed the canonical encoding")
			}

			arena, err := solver.SolveAtLevelOn(ctx, tc.task, tc.b, sub, solver.Options{})
			if err != nil {
				t.Fatalf("SolveAtLevelOn(arena): %v", err)
			}
			explicit, err := solver.SolveAtLevelOn(ctx, tc.task, tc.b, rehydrated, solver.Options{})
			if err != nil {
				t.Fatalf("SolveAtLevelOn(rehydrated): %v", err)
			}
			if arena.Solvable != explicit.Solvable {
				t.Fatalf("verdicts differ: arena %v, rehydrated %v", arena.Solvable, explicit.Solvable)
			}
			if arena.Nodes != explicit.Nodes {
				t.Fatalf("node counts differ: arena %d, rehydrated %d — representations not search-identical",
					arena.Nodes, explicit.Nodes)
			}
			if arena.Solvable {
				if err := solver.VerifyDecisionMap(tc.task, arena); err != nil {
					t.Errorf("VerifyDecisionMap(arena): %v", err)
				}
				if err := solver.VerifyDecisionMap(tc.task, explicit); err != nil {
					t.Errorf("VerifyDecisionMap(rehydrated): %v", err)
				}
			}
		})
	}
}
