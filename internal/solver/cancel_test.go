package solver

import (
	"context"
	"errors"
	"testing"
	"time"

	"waitfree/internal/tasks"
	"waitfree/internal/topology"
)

// TestSolveCanceledBeforeSearch pins the entry checkpoint: a context dead on
// arrival yields ErrCanceled wrapping the context error, with no search run.
func TestSolveCanceledBeforeSearch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	task := tasks.SetConsensus(3, 2)
	_, err := SolveAtLevelOn(ctx, task, 0, task.Inputs, Options{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("%v should wrap context.Canceled", err)
	}
}

// TestSolveCanceledMidSearch pins the in-loop checkpoint: cancellation during
// an exhaustive unsolvability proof stops the backtracking within one
// checkpoint interval instead of running the level to completion.
func TestSolveCanceledMidSearch(t *testing.T) {
	task := tasks.SetConsensus(3, 2)
	sub := topology.SDSPow(task.Inputs, 2)
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(30*time.Millisecond, cancel)
	start := time.Now()
	_, err := SolveAtLevelOn(ctx, task, 2, sub, Options{MaxNodes: 1 << 40})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("canceled search ran %v, want prompt stop", d)
	}
}

// TestSolveDeadlineMidSearch does the same through a deadline, which must
// surface distinguishably (DeadlineExceeded, not Canceled).
func TestSolveDeadlineMidSearch(t *testing.T) {
	task := tasks.SetConsensus(3, 2)
	sub := topology.SDSPow(task.Inputs, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := SolveAtLevelOn(ctx, task, 2, sub, Options{MaxNodes: 1 << 40})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

// TestBudgetStillTyped pins that the pre-existing budget error remains
// distinguishable from cancellation.
func TestBudgetStillTyped(t *testing.T) {
	task := tasks.SetConsensus(3, 2)
	sub := topology.SDSPow(task.Inputs, 2)
	_, err := SolveAtLevelOn(context.Background(), task, 2, sub, Options{MaxNodes: 10_000})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("got %v, want ErrBudget", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatalf("budget exhaustion must not read as cancellation: %v", err)
	}
}
