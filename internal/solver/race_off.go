//go:build !race

package solver

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
