package solver

import (
	"fmt"

	"waitfree/internal/tasks"
	"waitfree/internal/topology"
)

// TwoProcResult is the outcome of the exact two-process decision procedure.
type TwoProcResult struct {
	Solvable bool
	// Level is a sufficient subdivision level when solvable: the smallest b
	// with 3^b ≥ the longest connecting path over any input edge (SDS cuts
	// an edge into 3 per level).
	Level int
	// Corners records the chosen decision for each input vertex when
	// solvable.
	Corners map[topology.Vertex]topology.Vertex
}

// DecideTwoProcess decides wait-free solvability of a two-process task
// EXACTLY — no level bound. In contrast with three or more processes
// (undecidable, Gafni–Koutsoupias), for n+1 = 2 the characterization
// collapses to graph connectivity:
//
// A decision map on SDS^b of an input edge e = {u0, u1} is a walk in the
// output graph H_e (vertices: outputs allowed for carrier e; edges: output
// edges allowed for e) from a decision for the u0-corner to a decision for
// the u1-corner, where corner decisions must additionally be allowed for
// the solo carriers {u0}, {u1}. Since input edges share corner vertices,
// corner decisions must be chosen consistently across the whole input
// complex. The task is solvable iff such a global corner assignment exists
// — a finite search — and the required level is the longest shortest-path,
// log₃-compressed.
func DecideTwoProcess(task *tasks.Task) (*TwoProcResult, error) {
	if task.Procs != 2 {
		return nil, fmt.Errorf("solver: DecideTwoProcess requires a 2-process task, got %d", task.Procs)
	}
	in, out := task.Inputs, task.Outputs

	// Per input vertex: the solo-allowed output vertices of its color.
	soloAllowed := make(map[topology.Vertex][]topology.Vertex)
	for v := 0; v < in.NumVertices(); v++ {
		iv := topology.Vertex(v)
		for _, w := range out.VerticesOfColor(in.Color(iv)) {
			if task.Allowed([]topology.Vertex{iv}, []topology.Vertex{w}) {
				soloAllowed[iv] = append(soloAllowed[iv], w)
			}
		}
		if len(soloAllowed[iv]) == 0 {
			return &TwoProcResult{Solvable: false}, nil
		}
	}

	// Per input edge: pairwise shortest-path distances in H_e between
	// output vertices (∞ if disconnected or not allowed for e).
	type edgeInfo struct {
		u0, u1 topology.Vertex // corners colored 0 and 1 (by in colors)
		dist   map[[2]topology.Vertex]int
	}
	var edges []edgeInfo
	for _, e := range in.Facets() {
		if len(e) != 2 {
			if len(e) == 1 {
				continue // isolated input vertex: solo constraint only
			}
			return nil, fmt.Errorf("solver: input complex has a facet of size %d", len(e))
		}
		info := edgeInfo{u0: e[0], u1: e[1], dist: edgeDistances(task, e)}
		edges = append(edges, info)
	}

	// Search for a global corner assignment: pick c(v) ∈ soloAllowed[v]
	// such that for every edge, dist(c(u0), c(u1)) < ∞.
	order := make([]topology.Vertex, 0, in.NumVertices())
	for v := 0; v < in.NumVertices(); v++ {
		order = append(order, topology.Vertex(v))
	}
	assign := make(map[topology.Vertex]topology.Vertex, len(order))
	longest := 0

	var dfs func(idx int) bool
	dfs = func(idx int) bool {
		if idx == len(order) {
			// All assigned; compute the longest needed path.
			longest = 0
			for _, e := range edges {
				d := e.dist[[2]topology.Vertex{assign[e.u0], assign[e.u1]}]
				if d > longest {
					longest = d
				}
			}
			return true
		}
		v := order[idx]
		for _, w := range soloAllowed[v] {
			assign[v] = w
			ok := true
			for _, e := range edges {
				c0, has0 := assign[e.u0]
				c1, has1 := assign[e.u1]
				if !has0 || !has1 {
					continue
				}
				if _, conn := e.dist[[2]topology.Vertex{c0, c1}]; !conn {
					ok = false
					break
				}
			}
			if ok && dfs(idx+1) {
				return true
			}
		}
		delete(assign, v)
		return false
	}
	if !dfs(0) {
		return &TwoProcResult{Solvable: false}, nil
	}

	// Smallest b with 3^b ≥ longest (integer arithmetic — no float logs).
	level := 0
	for p := 1; p < longest; p *= 3 {
		level++
	}
	corners := make(map[topology.Vertex]topology.Vertex, len(assign))
	for k, v := range assign {
		corners[k] = v
	}
	return &TwoProcResult{Solvable: true, Level: level, Corners: corners}, nil
}

// edgeDistances computes shortest path lengths (in edges) between all pairs
// of output vertices within the graph of outputs allowed for the input edge
// e, walking only output edges allowed for e. Distance 0 is the vertex
// itself; absent key means unreachable.
func edgeDistances(task *tasks.Task, e []topology.Vertex) map[[2]topology.Vertex]int {
	out := task.Outputs
	nv := out.NumVertices()
	allowedVertex := make([]bool, nv)
	for w := 0; w < nv; w++ {
		allowedVertex[w] = task.Allowed(e, []topology.Vertex{topology.Vertex(w)})
	}
	// Adjacency restricted to allowed edges.
	adj := make([][]topology.Vertex, nv)
	all := out.AllSimplices()
	if len(all) > 1 {
		for _, oe := range all[1] {
			a, b := oe[0], oe[1]
			if !allowedVertex[a] || !allowedVertex[b] {
				continue
			}
			if !task.Allowed(e, []topology.Vertex{a, b}) {
				continue
			}
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
	}
	dist := make(map[[2]topology.Vertex]int)
	for s := 0; s < nv; s++ {
		if !allowedVertex[s] {
			continue
		}
		// BFS from s.
		d := map[topology.Vertex]int{topology.Vertex(s): 0}
		queue := []topology.Vertex{topology.Vertex(s)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range adj[v] {
				if _, seen := d[u]; !seen {
					d[u] = d[v] + 1
					queue = append(queue, u)
				}
			}
		}
		for v, dv := range d {
			dist[[2]topology.Vertex{topology.Vertex(s), v}] = dv
		}
	}
	return dist
}
