package protocol

import (
	"fmt"

	"waitfree/internal/topology"
)

// DecisionFunc is a decision function in the sense of §3.3, expressed on the
// iterated immediate snapshot full-information protocol: given a process,
// the number of rounds it has participated in, and the canonical key of its
// current view, report whether the process has decided. Once it returns
// true for a process's view it must stay true for all extensions (the
// explorer stops scheduling decided processes, mirroring the pruned tree in
// the proof of Lemma 3.1).
type DecisionFunc func(proc, round int, viewKey string) bool

// ErrUnbounded reports that the execution tree of Lemma 3.1 has a path on
// which some process participates more than maxRounds times without
// deciding — a witness that the decision function is not (boundedly)
// wait-free.
var ErrUnbounded = fmt.Errorf("protocol: execution tree exceeds the round bound")

// ExploreDecisionBound walks the tree of Lemma 3.1: all iterated immediate
// snapshot executions in which a process takes no further steps after it has
// decided. Each tree edge schedules a non-empty subset of the undecided
// processes for one one-shot round (in some ordered partition). The tree has
// finite branching; by König's lemma it is finite iff the decision function
// is bounded wait-free.
//
// It returns the bound b: the maximum, over all executions, of the number of
// rounds any single process participates in before deciding. If some path
// drives a process beyond maxRounds undecided participations, it returns
// ErrUnbounded (with the offending bound so far).
func ExploreDecisionBound(procs int, decided DecisionFunc, maxRounds int) (int, error) {
	type state struct {
		keys   []string
		done   []bool
		rounds []int // participations per process
	}
	init := state{
		keys:   make([]string, procs),
		done:   make([]bool, procs),
		rounds: make([]int, procs),
	}
	for i := 0; i < procs; i++ {
		init.keys[i] = InputKey(i)
		if decided(i, 0, init.keys[i]) {
			init.done[i] = true
		}
	}

	bound := 0
	var dfs func(st state) error
	dfs = func(st state) error {
		var undecided []int
		for i := 0; i < procs; i++ {
			if !st.done[i] {
				undecided = append(undecided, i)
			}
		}
		if len(undecided) == 0 {
			return nil // leaf: everyone decided
		}
		// Schedule every non-empty subset of the undecided processes, in
		// every ordered partition. (Processes outside the subset are the
		// ones "not appearing" this round; they may appear later.)
		for mask := 1; mask < 1<<len(undecided); mask++ {
			var sched []int
			for b, p := range undecided {
				if mask&(1<<b) != 0 {
					sched = append(sched, p)
				}
			}
			var err error
			topology.ForEachOrderedPartition(len(sched), func(blocks [][]int) {
				if err != nil {
					return
				}
				next := state{
					keys:   append([]string(nil), st.keys...),
					done:   append([]bool(nil), st.done...),
					rounds: append([]int(nil), st.rounds...),
				}
				var seen []string
				for _, block := range blocks {
					for _, bi := range block {
						seen = append(seen, st.keys[sched[bi]])
					}
					for _, bi := range block {
						p := sched[bi]
						next.keys[p] = ViewKey(st.keys[p], seen)
						next.rounds[p]++
						if next.rounds[p] > bound {
							bound = next.rounds[p]
						}
						if decided(p, next.rounds[p], next.keys[p]) {
							next.done[p] = true
						} else if next.rounds[p] >= maxRounds {
							err = fmt.Errorf("%w: process %d undecided after %d rounds", ErrUnbounded, p, next.rounds[p])
							return
						}
					}
				}
				err = dfs(next)
			})
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := dfs(init); err != nil {
		return bound, err
	}
	return bound, nil
}
