package protocol

import (
	"errors"
	"strings"
	"testing"
)

func TestDecisionBoundFixedRounds(t *testing.T) {
	// "Decide after b rounds" is bounded wait-free with bound exactly b.
	for _, procs := range []int{1, 2} {
		for b := 1; b <= 2; b++ {
			decided := func(p, round int, key string) bool { return round >= b }
			got, err := ExploreDecisionBound(procs, decided, b+2)
			if err != nil {
				t.Fatalf("procs=%d b=%d: %v", procs, b, err)
			}
			if got != b {
				t.Fatalf("procs=%d b=%d: bound = %d", procs, b, got)
			}
		}
	}
}

func TestDecisionBoundThreeProcsOneRound(t *testing.T) {
	decided := func(p, round int, key string) bool { return round >= 1 }
	got, err := ExploreDecisionBound(3, decided, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("bound = %d, want 1", got)
	}
}

func TestDecisionBoundAloneOrAll(t *testing.T) {
	// Two processes: every one-shot view is either solo or full, so "decide
	// when your view is solo or contains everyone" decides in exactly one
	// round — bounded with b = 1.
	decided := func(p, round int, key string) bool {
		if round == 0 {
			return false
		}
		// The round-1 key is S(P<p>|{...}); solo views contain one input
		// key, full views contain both.
		return strings.Contains(key, "{P0 P1}") || strings.Contains(key, "{P"+itoa(p)+"})")
	}
	got, err := ExploreDecisionBound(2, decided, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("bound = %d, want 1", got)
	}
}

func TestDecisionBoundUnboundedDetected(t *testing.T) {
	// "Decide only when you saw everyone" is not wait-free: a process
	// running solo forever never decides. König's tree has an infinite
	// path, reported as ErrUnbounded.
	decided := func(p, round int, key string) bool {
		return round >= 1 && strings.Contains(key, "P0") && strings.Contains(key, "P1")
	}
	_, err := ExploreDecisionBound(2, decided, 4)
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestDecisionBoundDecidedAtInput(t *testing.T) {
	// Deciding immediately on the input gives bound 0.
	decided := func(p, round int, key string) bool { return true }
	got, err := ExploreDecisionBound(3, decided, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("bound = %d, want 0", got)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
