package protocol

import (
	"reflect"
	"testing"

	"waitfree/internal/sched"
	"waitfree/internal/topology"
)

// TestFullInfoUnderSchedules runs the concurrent full-information protocol
// under adversarial schedules with controller-injected crashes: whatever the
// interleaving, the finishers' views must land on a simplex of SDS^b — the
// runtime plane staying inside the combinatorial plane of Lemma 3.3.
func TestFullInfoUnderSchedules(t *testing.T) {
	const (
		procs = 3
		b     = 2
	)
	complex := topology.SDSPow(topology.Simplex(procs-1), b)
	cases := []struct {
		adv     string
		seed    int64
		crashAt []int
	}{
		{adv: "round-robin", seed: 1},
		{adv: "priority-inversion", seed: 1},
		{adv: "solo-1", seed: 1},
		{adv: "random", seed: 5},
		{adv: "random", seed: 5, crashAt: []int{3, -1, -1}},
		{adv: "laggard", seed: 1, crashAt: []int{-1, 2, 4}},
	}
	for _, tc := range cases {
		t.Run(tc.adv, func(t *testing.T) {
			adv, err := sched.NewAdversary(tc.adv, tc.seed, procs)
			if err != nil {
				t.Fatal(err)
			}
			ctl := sched.New(sched.Config{Procs: procs, Adversary: adv, CrashAt: tc.crashAt})
			res, err := RunFullInfo(procs, b, nil, sched.Under(ctl))
			if err != nil {
				t.Fatalf("adversary=%s seed=%d crash=%v: %v", tc.adv, tc.seed, tc.crashAt, err)
			}
			for i := 0; i < procs; i++ {
				if ctl.Crashed(i) && res.Keys[i] != "" {
					t.Errorf("adversary=%s seed=%d crash=%v: crashed P%d reports view %q",
						tc.adv, tc.seed, tc.crashAt, i, res.Keys[i])
				}
				if ctl.StatusOf(i) == sched.StatusDone && res.Keys[i] == "" {
					t.Errorf("adversary=%s seed=%d crash=%v: finished P%d has no view",
						tc.adv, tc.seed, tc.crashAt, i)
				}
			}
			if _, err := LocateRun(complex, res); err != nil {
				t.Fatalf("adversary=%s seed=%d crash=%v: %v", tc.adv, tc.seed, tc.crashAt, err)
			}
		})
	}
}

// TestFullInfoScheduleReproducibility: identical schedule parameters replay
// identical final views.
func TestFullInfoScheduleReproducibility(t *testing.T) {
	const (
		procs = 3
		b     = 3
	)
	run := func() []string {
		ctl := sched.New(sched.Config{Procs: procs, Adversary: sched.NewRandom(77)})
		res, err := RunFullInfo(procs, b, nil, sched.Under(ctl))
		if err != nil {
			t.Fatalf("RunFullInfo: %v", err)
		}
		return res.Keys
	}
	if a, b2 := run(), run(); !reflect.DeepEqual(a, b2) {
		t.Fatalf("adversary=random seed=77: views diverge:\n%v\n%v", a, b2)
	}
}
