// Command benchguard compares a `go test -json -bench` run against a
// committed baseline and fails (exit 1) on regressions: more than a
// configurable ns/op slowdown (default 10%), ANY increase in allocs/op, or
// ANY increase in the solver benchmarks' custom nodes/op metric. The
// asymmetry is deliberate — wall-clock numbers wobble with CI machine load,
// while allocation and search-node counts are deterministic, so those gates
// are exact and the time gate has a tolerance band.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -benchtime 20x -json ./... > current.json
//	go run ./cmd/benchguard -baseline BENCH_engine.json -current current.json
//
// Both files may be either `go test -json` event streams or plain bench
// output. Benchmarks present in the current run but missing from the
// baseline are reported and skipped, so adding a benchmark never breaks CI;
// refreshing the committed baseline is what arms the gate for it.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one benchmark line, keyed by package-qualified name.
type benchResult struct {
	NsPerOp     float64
	NodesPerOp  float64
	HasNodes    bool
	AllocsPerOp int64
	HasAllocs   bool
}

// testEvent is the subset of the `go test -json` event schema benchguard
// consumes.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// benchLine matches a gofmt'd benchmark result. The `-\d+` strips the
// GOMAXPROCS suffix so baselines transfer across machine shapes; the
// nodes/op group is optional because only the solver benchmarks report it
// (ReportMetric prints custom units between ns/op and the -benchmem pair),
// and the B/op and allocs/op groups are optional because -benchmem may be
// absent.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) nodes/op)?(?:\s+[\d.]+ B/op\s+(\d+) allocs/op)?`)

// parseFile reads either a -json event stream or plain bench output and
// returns results keyed "pkg:BenchmarkName" (or just the name when no
// package is known).
func parseFile(path string) (map[string]benchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// A -json stream interleaves packages, and single benchmark result
	// lines are frequently split across several Output events; reassemble
	// the full per-package text first, then scan it line by line.
	if chunks, ok := parseEventStream(data); ok {
		out := make(map[string]benchResult)
		for pkg, text := range chunks {
			parseText(text, pkg, out)
		}
		return out, nil
	}
	out := make(map[string]benchResult)
	parseText(string(data), "", out)
	return out, nil
}

// parseEventStream returns the concatenated Output text per package, or
// ok=false when the file is not a `go test -json` stream.
func parseEventStream(data []byte) (map[string]string, bool) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	bufs := make(map[string]*strings.Builder)
	any := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, false
		}
		any = true
		if ev.Action != "output" || ev.Output == "" {
			continue
		}
		b := bufs[ev.Package]
		if b == nil {
			b = &strings.Builder{}
			bufs[ev.Package] = b
		}
		b.WriteString(ev.Output)
	}
	if !any {
		return nil, false
	}
	chunks := make(map[string]string, len(bufs))
	for pkg, b := range bufs {
		chunks[pkg] = b.String()
	}
	return chunks, true
}

// parseText scans reassembled bench output. Plain output carries its
// package in "pkg:" header lines — each header switches the current package,
// so a multi-package plain file keys identically to a -json stream of the
// same run. A -json chunk seeds pkg from the event; its embedded "pkg:"
// header names the same package, so the switch is a no-op there.
func parseText(text, pkg string, out map[string]benchResult) {
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		r := benchResult{NsPerOp: ns}
		if m[3] != "" {
			r.NodesPerOp, _ = strconv.ParseFloat(m[3], 64)
			r.HasNodes = true
		}
		if m[4] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			r.HasAllocs = true
		}
		key := m[1]
		if pkg != "" {
			key = pkg + ":" + m[1]
		}
		out[key] = r
	}
}

func run(baselinePath, currentPath string, threshold float64, stdout *strings.Builder) (failed bool, err error) {
	baseline, err := parseFile(baselinePath)
	if err != nil {
		return false, fmt.Errorf("baseline: %w", err)
	}
	current, err := parseFile(currentPath)
	if err != nil {
		return false, fmt.Errorf("current: %w", err)
	}
	if len(current) == 0 {
		return false, fmt.Errorf("no benchmark results in %s", currentPath)
	}
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cur := current[name]
		base, ok := baseline[name]
		if !ok {
			fmt.Fprintf(stdout, "SKIP %s: not in baseline (refresh the baseline to arm the gate)\n", name)
			continue
		}
		limit := base.NsPerOp * (1 + threshold)
		switch {
		case cur.NsPerOp > limit:
			failed = true
			fmt.Fprintf(stdout, "FAIL %s: %.0f ns/op, baseline %.0f (+%.1f%% > %.0f%% allowed)\n",
				name, cur.NsPerOp, base.NsPerOp, 100*(cur.NsPerOp/base.NsPerOp-1), 100*threshold)
		case cur.HasNodes && base.HasNodes && cur.NodesPerOp > base.NodesPerOp:
			failed = true
			fmt.Fprintf(stdout, "FAIL %s: %.0f nodes/op, baseline %.0f (search nodes are deterministic; any increase fails)\n",
				name, cur.NodesPerOp, base.NodesPerOp)
		case cur.HasAllocs && base.HasAllocs && cur.AllocsPerOp > base.AllocsPerOp:
			failed = true
			fmt.Fprintf(stdout, "FAIL %s: %d allocs/op, baseline %d (any increase fails)\n",
				name, cur.AllocsPerOp, base.AllocsPerOp)
		default:
			fmt.Fprintf(stdout, "ok   %s: %.0f ns/op (baseline %.0f)", name, cur.NsPerOp, base.NsPerOp)
			if cur.HasNodes && base.HasNodes {
				fmt.Fprintf(stdout, ", %.0f nodes/op (baseline %.0f)", cur.NodesPerOp, base.NodesPerOp)
			}
			if cur.HasAllocs && base.HasAllocs {
				fmt.Fprintf(stdout, ", %d allocs/op (baseline %d)", cur.AllocsPerOp, base.AllocsPerOp)
			}
			fmt.Fprintln(stdout)
		}
	}
	return failed, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_engine.json", "committed baseline (go test -json or plain bench output)")
	currentPath := flag.String("current", "", "current run to gate (required)")
	threshold := flag.Float64("threshold", 0.10, "allowed fractional ns/op slowdown")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -current is required")
		os.Exit(2)
	}
	var report strings.Builder
	failed, err := run(*baselinePath, *currentPath, *threshold, &report)
	os.Stdout.WriteString(report.String())
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}
