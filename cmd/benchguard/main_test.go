package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// eventStream builds a `go test -json` stream with a benchmark result line
// deliberately split across two Output events — the shape that broke naive
// per-line parsing and the reason parseFile reassembles per-package text.
const eventStream = `{"Action":"start","Package":"waitfree/internal/topology"}
{"Action":"output","Package":"waitfree/internal/topology","Output":"pkg: waitfree/internal/topology\n"}
{"Action":"output","Package":"waitfree/internal/topology","Output":"BenchmarkSDSPowSequential\n"}
{"Action":"output","Package":"waitfree/internal/topology","Output":"BenchmarkSDSPowSequential-4   \t"}
{"Action":"output","Package":"waitfree/internal/topology","Output":"      10\t   1976361 ns/op\t  772538 B/op\t    3916 allocs/op\n"}
{"Action":"output","Package":"waitfree/internal/engine","Output":"pkg: waitfree/internal/engine\n"}
{"Action":"output","Package":"waitfree/internal/engine","Output":"BenchmarkEngineSolveWarm-4   \t     100\t     52000 ns/op\n"}
{"Action":"pass","Package":"waitfree/internal/engine"}
`

func write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseEventStreamReassemblesSplitLines(t *testing.T) {
	got, err := parseFile(write(t, "cur.json", eventStream))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := got["waitfree/internal/topology:BenchmarkSDSPowSequential"]
	if !ok {
		t.Fatalf("split benchmark line not reassembled; parsed keys: %v", keys(got))
	}
	if r.NsPerOp != 1976361 || !r.HasAllocs || r.AllocsPerOp != 3916 {
		t.Fatalf("wrong result: %+v", r)
	}
	e, ok := got["waitfree/internal/engine:BenchmarkEngineSolveWarm"]
	if !ok || e.NsPerOp != 52000 || e.HasAllocs {
		t.Fatalf("engine result wrong: %+v (ok=%v)", e, ok)
	}
}

func TestParsePlainBenchOutput(t *testing.T) {
	plain := "goos: linux\npkg: waitfree/internal/topology\nBenchmarkSDSPowParallel-8   \t10\t1745105 ns/op\t772588 B/op\t3919 allocs/op\n"
	got, err := parseFile(write(t, "plain.txt", plain))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := got["waitfree/internal/topology:BenchmarkSDSPowParallel"]
	if !ok || r.AllocsPerOp != 3919 {
		t.Fatalf("plain parse wrong: %+v (ok=%v)", r, ok)
	}
}

// TestParsePlainMultiPackage: a plain baseline spanning several packages
// must key each benchmark under its own "pkg:" header, matching the keys a
// -json stream of the same run would produce — otherwise every cross-package
// comparison silently degrades to SKIP.
func TestParsePlainMultiPackage(t *testing.T) {
	plain := "pkg: waitfree/internal/engine\nBenchmarkEngineSolveWarm-4 20 9000 ns/op\n" +
		"pkg: waitfree/internal/solver\nBenchmarkSolverStructuredSetConsensus-4 200 750000 ns/op 1299 nodes/op 123000 B/op 4399 allocs/op\n"
	got, err := parseFile(write(t, "multi.txt", plain))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["waitfree/internal/engine:BenchmarkEngineSolveWarm"]; !ok {
		t.Fatalf("engine key missing: %v", keys(got))
	}
	r, ok := got["waitfree/internal/solver:BenchmarkSolverStructuredSetConsensus"]
	if !ok || !r.HasNodes || r.NodesPerOp != 1299 || r.AllocsPerOp != 4399 {
		t.Fatalf("solver key wrong: %+v (ok=%v)", r, ok)
	}
}

func TestGateNsPerOpRegression(t *testing.T) {
	base := write(t, "base.txt", "pkg: p\nBenchmarkX-4 10 1000 ns/op\n")
	cur := write(t, "cur.txt", "pkg: p\nBenchmarkX-4 10 1200 ns/op\n")
	var out strings.Builder
	failed, err := run(base, cur, 0.10, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("20%% slowdown passed a 10%% gate; report:\n%s", out.String())
	}
	// Within tolerance passes.
	cur2 := write(t, "cur2.txt", "pkg: p\nBenchmarkX-4 10 1090 ns/op\n")
	out.Reset()
	if failed, err = run(base, cur2, 0.10, &out); err != nil || failed {
		t.Fatalf("9%% slowdown failed a 10%% gate (err=%v):\n%s", err, out.String())
	}
}

func TestGateAllocRegressionIsExact(t *testing.T) {
	base := write(t, "base.txt", "pkg: p\nBenchmarkX-4 10 1000 ns/op 500 B/op 40 allocs/op\n")
	cur := write(t, "cur.txt", "pkg: p\nBenchmarkX-4 10 1000 ns/op 500 B/op 41 allocs/op\n")
	var out strings.Builder
	failed, err := run(base, cur, 0.10, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("+1 allocs/op passed the gate; report:\n%s", out.String())
	}
}

// TestGateNodesRegressionIsExact pins the solver search-node gate: nodes/op
// is ReportMetric output printed between ns/op and the -benchmem pair, it is
// deterministic, and ANY increase fails regardless of timing headroom.
func TestGateNodesRegressionIsExact(t *testing.T) {
	base := write(t, "base.txt", "pkg: p\nBenchmarkSolver-4 10 1000 ns/op 1299 nodes/op 500 B/op 40 allocs/op\n")
	cur := write(t, "cur.txt", "pkg: p\nBenchmarkSolver-4 10 1000 ns/op 1305 nodes/op 500 B/op 40 allocs/op\n")
	var out strings.Builder
	failed, err := run(base, cur, 0.10, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("+6 nodes/op passed the gate; report:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "nodes/op") {
		t.Fatalf("failure not attributed to nodes/op:\n%s", out.String())
	}
	// Equal node counts pass, and a fractional metric (68.00) parses.
	base2 := write(t, "base2.txt", "pkg: p\nBenchmarkSolver-4 10 1000 ns/op 68.00 nodes/op 500 B/op 40 allocs/op\n")
	cur2 := write(t, "cur2.txt", "pkg: p\nBenchmarkSolver-4 10 1000 ns/op 68.00 nodes/op 500 B/op 40 allocs/op\n")
	out.Reset()
	if failed, err = run(base2, cur2, 0.10, &out); err != nil || failed {
		t.Fatalf("equal nodes/op failed the gate (err=%v):\n%s", err, out.String())
	}
}

// TestParseNodesMetricWithoutBenchmem: a nodes/op metric with no trailing
// -benchmem pair still parses (and vice versa — the alloc-only shape is
// covered by the plain-output test above).
func TestParseNodesMetricWithoutBenchmem(t *testing.T) {
	got, err := parseFile(write(t, "n.txt", "pkg: p\nBenchmarkSolver-8 10 1000 ns/op 36.00 nodes/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := got["p:BenchmarkSolver"]
	if !ok || !r.HasNodes || r.NodesPerOp != 36 || r.HasAllocs {
		t.Fatalf("parse wrong: %+v (ok=%v)", r, ok)
	}
}

func TestMissingBaselineBenchmarkIsSkipped(t *testing.T) {
	base := write(t, "base.txt", "pkg: p\nBenchmarkX-4 10 1000 ns/op\n")
	cur := write(t, "cur.txt", "pkg: p\nBenchmarkX-4 10 1000 ns/op\nBenchmarkNew-4 10 99999999 ns/op\n")
	var out strings.Builder
	failed, err := run(base, cur, 0.10, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("new benchmark with no baseline failed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "SKIP p:BenchmarkNew") {
		t.Fatalf("missing-baseline skip not reported:\n%s", out.String())
	}
}

func TestEmptyCurrentIsAnError(t *testing.T) {
	base := write(t, "base.txt", "pkg: p\nBenchmarkX-4 10 1000 ns/op\n")
	cur := write(t, "cur.txt", "no benchmarks here\n")
	var out strings.Builder
	if _, err := run(base, cur, 0.10, &out); err == nil {
		t.Fatal("empty current run must error, not silently pass")
	}
}

// TestCommittedBaselineParses pins that the repo's committed baseline stays
// consumable by benchguard — the CI job depends on it.
func TestCommittedBaselineParses(t *testing.T) {
	for _, rel := range []string{"../../BENCH_engine.json"} {
		got, err := parseFile(rel)
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		if len(got) == 0 {
			t.Fatalf("%s: no benchmark results parsed", rel)
		}
	}
}

func keys(m map[string]benchResult) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
