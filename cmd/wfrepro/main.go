// Command wfrepro drives every experiment of the reproduction from the
// shell. Each subcommand regenerates one of the paper's artifacts:
//
//	wfrepro emulate   — Figures 1 & 2: run the k-shot protocol natively and
//	                    emulated, validate both traces, report overhead
//	wfrepro complex   — Lemmas 3.2/3.3: view complexes vs SDS^b, f-vectors
//	wfrepro homology  — Lemma 2.2 instances: Betti numbers of SDS^b(sⁿ)
//	wfrepro solve     — Proposition 3.1: solvability verdicts for the
//	                    classic tasks
//	wfrepro converge  — Theorem 5.1: find the SDS^k → A map and run
//	                    distributed simplex agreement
//	wfrepro rename    — wait-free (2p−1)-renaming runs
//	wfrepro bg        — BG simulation demo
//	wfrepro adversary — deterministic adversary schedules + crash injection
//	                    over any concurrent runtime; reproducible from
//	                    (adversary, seed, crash vector)
//
// Run `wfrepro <cmd> -h` for per-command flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"waitfree/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wfrepro:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	cmds := map[string]func([]string) error{
		"emulate":    cmdEmulate,
		"complex":    cmdComplex,
		"homology":   cmdHomology,
		"solve":      cmdSolve,
		"twoproc":    cmdTwoProc,
		"converge":   cmdConverge,
		"rename":     cmdRename,
		"bg":         cmdBG,
		"adversary":  cmdAdversary,
		"bound":      cmdBound,
		"modelcheck": cmdModelCheck,
		"sperner":    cmdSperner,
		"ncsac":      cmdNCSAC,
		"serve":      cmdServe,
		"all":        cmdAll,
	}
	cmd, ok := cmds[args[0]]
	if !ok {
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
	return cmd(args[1:])
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: wfrepro <command> [flags]

commands:
  emulate    run Figure 1 natively and through the Figure 2 emulation
  complex    build one-shot/iterated view complexes, compare with SDS^b
  homology   Betti numbers of subdivided simplices (Lemma 2.2)
  solve      solvability verdicts via the Prop 3.1 checker
  twoproc    exact 2-process solvability (no level bound)
  converge   Theorem 5.1 map search + distributed simplex agreement
  rename     wait-free (2p-1)-renaming
  bg         Borowsky-Gafni simulation demo
  adversary  run a runtime under a deterministic adversary schedule
  bound      Lemma 3.1 Koenig-tree decision bounds
  modelcheck exhaustive interleavings of the participating-set algorithm
  sperner    random Sperner labelings of SDS^b (odd panchromatic counts)
  ncsac      non-chromatic simplex agreement over a path (sec. 5)
  serve      HTTP query service: cached solvability/complex/converge/adversary
  all        run every experiment in sequence`)
}

func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

// signalContext returns a context canceled on Ctrl-C / SIGTERM, so that
// long-running searches stop at their next cooperative checkpoint instead
// of the process dying mid-write.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// withTrace attaches an obs trace to ctx when enabled; the returned flush
// renders the finished span tree to stderr (stdout stays reserved for the
// JSON payload, so piping to jq keeps working).
func withTrace(ctx context.Context, enabled bool) (context.Context, func()) {
	if !enabled {
		return ctx, func() {}
	}
	tr := obs.NewTrace()
	return obs.WithTrace(ctx, tr), func() { obs.WriteTree(os.Stderr, tr.Snapshot()) }
}
