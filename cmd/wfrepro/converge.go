package main

import (
	"fmt"
	"os"

	"waitfree/internal/converge"
	"waitfree/internal/engine"
	"waitfree/internal/topology"
)

// cmdConverge reproduces Theorem 5.1: find a color- and carrier-preserving
// simplicial map SDS^k(sⁿ) → A for a sample chromatic subdivision A, then
// run distributed chromatic simplex agreement (CSASS) over the real IIS
// runtime using that map. With -json it answers the map-search query through
// the engine and emits exactly the /v1/converge response bytes.
func cmdConverge(args []string) error {
	fs := newFlagSet("converge")
	n := fs.Int("n", 2, "dimension (processes − 1)")
	target := fs.Int("target", 1, "target subdivision A = SDS^target(sⁿ)")
	trials := fs.Int("trials", 10, "distributed agreement runs")
	maxK := fs.Int("maxk", 3, "maximum level to search")
	asJSON := fs.Bool("json", false, "emit the /v1/converge response JSON instead of text")
	trace := fs.Bool("trace", false, "with -json: print the request's span tree to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signalContext()
	defer stop()
	if *asJSON {
		ctx, flush := withTrace(ctx, *trace)
		resp, err := engine.New(engine.Options{}).Converge(ctx, engine.ConvergeRequest{
			N: *n, Target: *target, MaxK: *maxK,
		})
		flush()
		if err != nil {
			return err
		}
		return engine.WriteJSON(os.Stdout, resp)
	}

	base := topology.Simplex(*n)
	a := topology.SDSPow(base, *target)
	fmt.Printf("Theorem 5.1: searching for SDS^k(s%d) → SDS^%d(s%d), k ≤ %d\n", *n, *target, *n, *maxK)
	phi, k, err := converge.FindChromaticMapCtx(ctx, base, a, *maxK)
	if err != nil {
		return err
	}
	fmt.Printf("  found at k = %d: simplicial=%v colorPreserving=%v carrierRespecting=%v\n",
		k, phi.Validate() == nil, phi.ColorPreserving(), phi.CarrierRespecting())

	procs := *n + 1
	all := make([]topology.Vertex, procs)
	for i := range all {
		all[i] = topology.Vertex(i)
	}
	fmt.Printf("CSASS runtime: %d processes converge on a simplex of A via %d IIS rounds\n", procs, k)
	for t := 0; t < *trials; t++ {
		res, err := converge.RunSimplexAgreement(phi, k, procs, nil)
		if err != nil {
			return err
		}
		if err := converge.ValidateAgreement(a, res, all); err != nil {
			return fmt.Errorf("trial %d: %w", t, err)
		}
	}
	fmt.Printf("  %d/%d runs converged to simplices of A with carriers inside the participants\n", *trials, *trials)

	bsd := topology.Bsd(base)
	if _, kb, err := converge.FindCarrierMapCtx(ctx, base, bsd, *maxK); err == nil {
		fmt.Printf("Lemma 5.3: carrier-preserving SDS^%d(s%d) → Bsd(s%d) found\n", kb, *n, *n)
	}

	fmt.Println("mesh of the Lemma 3.2 embedding (the quantitative “k large enough”):")
	maxMeshB := 3
	if *n >= 2 {
		maxMeshB = 2
	}
	if *n >= 3 {
		maxMeshB = 1
	}
	for b := 1; b <= maxMeshB; b++ {
		c, emb, err := topology.EmbedSDSPow(*n, b)
		if err != nil {
			return err
		}
		mesh, err := topology.Mesh(c, emb)
		if err != nil {
			return err
		}
		fmt.Printf("  mesh(SDS^%d(s%d)) = %.4f (%d facets)\n", b, *n, mesh, len(c.Facets()))
	}
	return nil
}
