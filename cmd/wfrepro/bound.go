package main

import (
	"errors"
	"fmt"
	"strings"

	"waitfree/internal/modelcheck"
	"waitfree/internal/protocol"
	"waitfree/internal/solver"
	"waitfree/internal/tasks"
)

// cmdBound reproduces Lemma 3.1's König argument: it walks the tree of
// executions in which decided processes stop, reporting either the exact
// bound or an unboundedness witness.
func cmdBound(args []string) error {
	fs := newFlagSet("bound")
	procs := fs.Int("n", 2, "number of processes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Printf("Lemma 3.1 König-tree exploration, %d processes\n", *procs)
	for _, b := range []int{1, 2} {
		target := b
		decided := func(p, round int, key string) bool { return round >= target }
		bound, err := protocol.ExploreDecisionBound(*procs, decided, target+2)
		if err != nil {
			return err
		}
		fmt.Printf("  decide-at-round-%d: tree bounded, b = %d\n", target, bound)
	}

	// A non-wait-free decision function: decide only after seeing everyone.
	all := make([]string, *procs)
	for i := range all {
		all[i] = protocol.InputKey(i)
	}
	decided := func(p, round int, key string) bool {
		for _, k := range all {
			if !strings.Contains(key, k) {
				return false
			}
		}
		return round >= 1
	}
	_, err := protocol.ExploreDecisionBound(*procs, decided, 4)
	if errors.Is(err, protocol.ErrUnbounded) {
		fmt.Printf("  decide-after-seeing-everyone: UNBOUNDED (%v)\n", err)
		return nil
	}
	if err != nil {
		return err
	}
	return fmt.Errorf("expected unboundedness witness, got a bound")
}

// cmdModelCheck exhaustively explores all interleavings of the
// participating-set algorithm.
func cmdModelCheck(args []string) error {
	fs := newFlagSet("modelcheck")
	n := fs.Int("n", 3, "number of processes (≤ 4)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("exhaustive interleaving exploration of the participating-set algorithm\n")
	for m := 1; m <= *n; m++ {
		res, err := modelcheck.Explore(m)
		if err != nil {
			return err
		}
		fmt.Printf("  n=%d: %d states, %d terminal, %d distinct outcomes (Fubini check)\n",
			m, res.States, res.Terminal, res.Outcomes)
	}
	fmt.Println("  all terminal states satisfy self-inclusion, comparability, immediacy")

	fmt.Println("exhaustive IIS-schedule exploration of the Figure 2 emulation (1 shot):")
	for m := 1; m <= min(*n, 3); m++ {
		res, err := modelcheck.ExploreEmulation(m, 14)
		if err != nil {
			return err
		}
		fmt.Printf("  n=%d: %d states, %d terminal schedules, %d read outcomes, ≤%d memories\n",
			m, res.States, res.Terminals, res.ReadOutcomes, res.MaxMemory)
	}
	fmt.Println("  every schedule produced a legal atomic snapshot execution (Prop 4.1)")
	return nil
}

// cmdTwoProc runs the exact two-process decision procedure.
func cmdTwoProc(args []string) error {
	fs := newFlagSet("twoproc")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Println("exact 2-process solvability (graph connectivity; no level bound):")
	jobs := []*tasks.Task{
		tasks.Consensus(2),
		tasks.Renaming(2, 3),
		tasks.ApproxAgreement(2),
		tasks.ApproxAgreement(9),
		tasks.ApproxAgreement(27),
	}
	for _, task := range jobs {
		res, err := solver.DecideTwoProcess(task)
		if err != nil {
			return err
		}
		if res.Solvable {
			fmt.Printf("  %-24s SOLVABLE, sufficient level %d\n", task.Name, res.Level)
		} else {
			fmt.Printf("  %-24s UNSOLVABLE at every level\n", task.Name)
		}
	}
	fmt.Println("(for ≥ 3 processes the question is undecidable; see `wfrepro solve` for")
	fmt.Println(" the bounded-level checker)")
	return nil
}
