package main

import (
	"fmt"

	"waitfree/internal/engine"
	"waitfree/internal/serve"
)

// cmdServe runs the solvability query service: the engine behind every
// -json subcommand, exposed over HTTP with caching, dedup, and metrics.
func cmdServe(args []string) error {
	fs := newFlagSet("serve")
	addr := fs.String("addr", "localhost:8080", "listen address")
	cacheSize := fs.Int("cache", engine.DefaultCacheSize, "in-memory cache entries")
	spill := fs.String("spill", "", "directory for the gob spill-to-disk tier (empty = memory only)")
	spillMax := fs.Int64("spillmax", engine.DefaultSpillMaxBytes, "byte budget for the spill dir (oldest files swept first)")
	workers := fs.Int("workers", 0, "subdivision/solver workers (0 = NumCPU)")
	maxconc := fs.Int("maxconc", serve.DefaultMaxConcurrent, "max concurrent requests")
	timeout := fs.Duration("timeout", serve.DefaultTimeout, "per-request deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}

	eng := engine.New(engine.Options{CacheSize: *cacheSize, SpillDir: *spill, SpillMaxBytes: *spillMax, Workers: *workers})
	srv := serve.NewServer(eng, serve.Options{MaxConcurrent: *maxconc, Timeout: *timeout})

	ctx, stop := signalContext()
	defer stop()

	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- serve.Run(ctx, *addr, srv, ready) }()
	select {
	case bound := <-ready:
		fmt.Printf("wfrepro serve: listening on http://%s (cache=%d workers=%d maxconc=%d timeout=%s)\n",
			bound, *cacheSize, *workers, *maxconc, *timeout)
	case err := <-errc:
		return err
	}
	err := <-errc
	if err == nil {
		fmt.Println("wfrepro serve: drained, bye")
	}
	return err
}
