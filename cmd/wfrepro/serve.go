package main

import (
	"fmt"
	"log/slog"
	"os"

	"waitfree/internal/engine"
	"waitfree/internal/serve"
)

// cmdServe runs the solvability query service: the engine behind every
// -json subcommand, exposed over HTTP with caching, dedup, and metrics.
func cmdServe(args []string) error {
	fs := newFlagSet("serve")
	addr := fs.String("addr", "localhost:8080", "listen address")
	cacheSize := fs.Int("cache", engine.DefaultCacheSize, "in-memory cache entries")
	spill := fs.String("spill", "", "directory for the gob spill-to-disk tier (empty = memory only)")
	spillMax := fs.Int64("spillmax", engine.DefaultSpillMaxBytes, "byte budget for the spill dir (oldest files swept first)")
	workers := fs.Int("workers", 0, "subdivision/solver workers (0 = NumCPU)")
	maxconc := fs.Int("maxconc", serve.DefaultMaxConcurrent, "max concurrent requests")
	timeout := fs.Duration("timeout", serve.DefaultTimeout, "per-request deadline")
	slowlog := fs.Duration("slowlog", 0, "log queries slower than this with a reproducing CLI line (0 = off)")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof/* (CPU/heap/goroutine profiles)")
	traceBuf := fs.Int("tracebuf", 0, "trace registry capacity for /debug/traces (0 = default 256)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	eng := engine.New(engine.Options{CacheSize: *cacheSize, SpillDir: *spill, SpillMaxBytes: *spillMax, Workers: *workers})
	srv := serve.NewServer(eng, serve.Options{
		MaxConcurrent: *maxconc,
		Timeout:       *timeout,
		SlowLog:       *slowlog,
		Logger:        slog.New(slog.NewTextHandler(os.Stderr, nil)),
		EnablePprof:   *pprofOn,
		TraceBuffer:   *traceBuf,
	})

	ctx, stop := signalContext()
	defer stop()

	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- serve.Run(ctx, *addr, srv, ready) }()
	select {
	case bound := <-ready:
		fmt.Printf("wfrepro serve: listening on http://%s (cache=%d workers=%d maxconc=%d timeout=%s slowlog=%s pprof=%v)\n",
			bound, *cacheSize, *workers, *maxconc, *timeout, *slowlog, *pprofOn)
	case err := <-errc:
		return err
	}
	err := <-errc
	if err == nil {
		fmt.Println("wfrepro serve: drained, bye")
	}
	return err
}
