package main

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"waitfree/internal/cluster"
	"waitfree/internal/engine"
	"waitfree/internal/faultfs"
	"waitfree/internal/netfault"
	"waitfree/internal/serve"
)

// cmdServe runs the solvability query service: the engine behind every
// -json subcommand, exposed over HTTP with caching, dedup, and metrics.
func cmdServe(args []string) error {
	fs := newFlagSet("serve")
	addr := fs.String("addr", "localhost:8080", "listen address")
	cacheSize := fs.Int("cache", engine.DefaultCacheSize, "in-memory cache entries")
	spill := fs.String("spill", "", "directory for the gob spill-to-disk tier (empty = memory only)")
	spillMax := fs.Int64("spillmax", engine.DefaultSpillMaxBytes, "byte budget for the spill dir (oldest files swept first)")
	workers := fs.Int("workers", 0, "subdivision/solver workers (0 = NumCPU)")
	maxconc := fs.Int("maxconc", serve.DefaultMaxConcurrent, "max concurrent requests")
	timeout := fs.Duration("timeout", serve.DefaultTimeout, "per-request deadline")
	slowlog := fs.Duration("slowlog", 0, "log queries slower than this with a reproducing CLI line (0 = off)")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof/* (CPU/heap/goroutine profiles)")
	traceBuf := fs.Int("tracebuf", 0, "trace registry capacity for /debug/traces (0 = default 256)")
	maxCost := fs.Int64("maxcost", 0, "admission budget in Lemma 3.3 facets; over-estimate queries get 400 (0 = unlimited)")
	degCost := fs.Int64("degradedcost", 0, "degraded-mode cost budget (0 = default, negative = cache hits only)")
	brkThresh := fs.Int("breaker-threshold", 0, "spill-fault/5xx count that trips degraded mode (0 = default)")
	brkWindow := fs.Duration("breaker-window", 0, "sliding window for breaker failure counting (0 = default)")
	brkCooldown := fs.Duration("breaker-cooldown", 0, "quiet period before the breaker recovers (0 = default)")
	faultSeed := fs.Int64("faultseed", 0, "DEV ONLY: inject deterministic storage faults into the spill tier with this seed (0 = off)")
	faultRate := fs.Float64("faultrate", 0, "DEV ONLY: per-op fault probability for -faultseed (0 = default 0.1)")
	peers := fs.String("peers", "", "comma-separated seed peer list (incl. or excl. this node) — enables cluster mode; gossip discovers the rest")
	advertise := fs.String("advertise", "", "this node's address as it appears in -peers (default: -addr)")
	vnodes := fs.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per peer on the hash ring")
	gossipEvery := fs.Duration("gossip-interval", 0, "membership gossip cadence (0 = default)")
	netfaultSeed := fs.Int64("netfaultseed", 0, "DEV ONLY: inject deterministic network faults into cluster traffic with this seed (0 = off)")
	netfaultRate := fs.Float64("netfaultrate", -1, "DEV ONLY: per-op fault probability for -netfaultseed (negative = default 0.1, 0 = partitions only)")
	netPartition := fs.String("netpartition", "", "DEV ONLY: standing partition spec, e.g. 'a:1|b:1,c:1' or 'a:1->b:1' (arms the adversary even without -netfaultseed)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	eo := engine.Options{CacheSize: *cacheSize, SpillDir: *spill, SpillMaxBytes: *spillMax, Workers: *workers}
	if *faultSeed != 0 {
		// The storage adversary, same contract as the scheduler's -seed: the
		// fault schedule is a pure function of the seed, printed up front so
		// a failure report can quote it.
		ffs := faultfs.New(faultfs.OS{}, *faultSeed, *faultRate)
		eo.SpillFS = ffs
		fmt.Fprintf(os.Stderr, "wfrepro serve: DEV storage fault injection active\n%s", ffs.PlanString(32))
	}
	eng := engine.New(eo)

	var cl *cluster.Cluster
	var nft *netfault.Transport
	if *peers != "" {
		self := *advertise
		if self == "" {
			self = *addr
		}
		var client *http.Client
		if *netfaultSeed != 0 || *netPartition != "" {
			// The network adversary, same contract as -faultseed for disk and
			// the scheduler's -seed: the fault plan is a pure function of
			// (seed, rate, src, dst, op-index), printed up front per peer so a
			// failure report can quote the exact schedule that produced it.
			nft = netfault.New(nil, self, netfault.Options{Seed: *netfaultSeed, Rate: *netfaultRate})
			if err := nft.SetPartition(*netPartition); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wfrepro serve: DEV network fault injection active\n")
			if *netfaultSeed != 0 {
				for _, p := range strings.Split(*peers, ",") {
					dst := cluster.NormalizeAddr(p)
					if dst == "" || dst == cluster.NormalizeAddr(self) {
						continue
					}
					fmt.Fprint(os.Stderr, nft.PlanString(self, dst, 8))
				}
			}
			client = &http.Client{Timeout: 30 * time.Second, Transport: nft}
		}
		var err error
		cl, err = cluster.New(cluster.Options{
			Self:           self,
			Peers:          strings.Split(*peers, ","),
			VNodes:         *vnodes,
			GossipInterval: *gossipEvery,
			Client:         client,
			Metrics:        eng.Metrics(),
			// Anti-entropy admission and the cost-derived fetch bound both
			// come from the engine: the cluster moves bytes, the engine
			// decides what they may cost and whether they decode.
			Admitter:   eng,
			FetchLimit: eng.FetchByteLimit,
		})
		if err != nil {
			return err
		}
		// Peer cache-fill: the engine asks the key's ring owner for finished
		// artifacts before computing a miss.
		eng.SetPeerFiller(cl)
	}

	srv := serve.NewServer(eng, serve.Options{
		MaxConcurrent:   *maxconc,
		Timeout:         *timeout,
		SlowLog:         *slowlog,
		Logger:          slog.New(slog.NewTextHandler(os.Stderr, nil)),
		EnablePprof:     *pprofOn,
		TraceBuffer:     *traceBuf,
		MaxCost:         *maxCost,
		DegradedMaxCost: *degCost,
		Breaker: serve.BreakerOptions{
			Threshold: *brkThresh,
			Window:    *brkWindow,
			Cooldown:  *brkCooldown,
		},
		Cluster:  cl,
		NetFault: nft,
	})

	ctx, stop := signalContext()
	defer stop()
	if cl != nil {
		cl.Start(ctx)
		fmt.Printf("wfrepro serve: cluster mode, self=%s ring=%d nodes × %d vnodes\n",
			cl.Self(), len(cl.Ring().Nodes()), *vnodes)
	}

	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- serve.Run(ctx, *addr, srv, ready) }()
	select {
	case bound := <-ready:
		fmt.Printf("wfrepro serve: listening on http://%s (cache=%d workers=%d maxconc=%d timeout=%s slowlog=%s pprof=%v)\n",
			bound, *cacheSize, *workers, *maxconc, *timeout, *slowlog, *pprofOn)
	case err := <-errc:
		return err
	}
	err := <-errc
	if cl != nil {
		// Graceful leave, after the listener has drained: announce the
		// departure at a bumped incarnation so peers remap the ring now
		// instead of after a suspicion timeout. Best-effort on a fresh
		// context — the signal context is already canceled.
		leaveCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		cl.Leave(leaveCtx)
		cancel()
		fmt.Println("wfrepro serve: announced leave to cluster")
	}
	if err == nil {
		fmt.Println("wfrepro serve: drained, bye")
	}
	return err
}
