package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"waitfree/internal/engine"
	"waitfree/internal/serve"
)

// captureStdout runs fn with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan []byte)
	go func() {
		data, _ := io.ReadAll(r)
		done <- data
	}()
	runErr := fn()
	w.Close()
	out := <-done
	if runErr != nil {
		t.Fatalf("command failed: %v\noutput: %s", runErr, out)
	}
	return out
}

// TestJSONMatchesService is the shared-encoder contract: `wfrepro <cmd>
// -json` and the corresponding /v1/* endpoint emit byte-identical responses
// for the same query.
func TestJSONMatchesService(t *testing.T) {
	srv := serve.NewServer(engine.New(engine.Options{}), serve.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		args []string
		path string
	}{
		{"solve-consensus",
			[]string{"solve", "-json", "-family", "consensus", "-procs", "2", "-maxb", "1"},
			"/v1/solve?family=consensus&procs=2&maxb=1"},
		{"solve-approx",
			[]string{"solve", "-json", "-family", "approx-agreement", "-d", "2", "-maxb", "2"},
			"/v1/solve?family=approx-agreement&d=2&maxb=2"},
		{"converge",
			[]string{"converge", "-json", "-n", "1", "-target", "1", "-maxk", "2"},
			"/v1/converge?n=1&target=1&maxk=2"},
		{"adversary",
			[]string{"adversary", "-json", "-algo", "commitadopt", "-adv", "random", "-seed", "42", "-n", "3", "-crash", "2,-1,-1"},
			"/v1/adversary?algo=commitadopt&adversary=random&seed=42&procs=3&crash=2,-1,-1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cli := captureStdout(t, func() error { return run(tc.args) })

			resp, err := http.Get(ts.URL + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("service: %d %s", resp.StatusCode, body)
			}
			if string(cli) != string(body) {
				t.Errorf("CLI and service bytes differ:\ncli:     %s\nservice: %s", cli, body)
			}
		})
	}
}
