package main

import (
	"fmt"
	"os"

	"waitfree/internal/engine"
	"waitfree/internal/homology"
	"waitfree/internal/protocol"
	"waitfree/internal/topology"
)

// cmdComplex reproduces Lemmas 3.2 and 3.3: it enumerates the executions of
// the b-round iterated immediate snapshot full-information protocol, builds
// the view complex, and compares it with SDS^b(sⁿ). With -json it answers
// one query through the engine and emits exactly the /v1/complex response
// bytes — the line the serve layer's slowlog prints for slow queries.
func cmdComplex(args []string) error {
	fs := newFlagSet("complex")
	n := fs.Int("n", 2, "dimension (processes − 1)")
	b := fs.Int("b", 2, "maximum rounds")
	asJSON := fs.Bool("json", false, "emit the /v1/complex response JSON for one (n, b) query")
	trace := fs.Bool("trace", false, "with -json: print the request's span tree to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *asJSON {
		ctx, stop := signalContext()
		defer stop()
		ctx, flush := withTrace(ctx, *trace)
		resp, err := engine.New(engine.Options{}).ComplexInfo(ctx, engine.ComplexRequest{N: *n, B: *b})
		flush()
		if err != nil {
			return err
		}
		return engine.WriteJSON(os.Stdout, resp)
	}
	if *n > 3 || *b > 3 || (*n >= 3 && *b >= 2) {
		return fmt.Errorf("complex enumeration is exponential; use n ≤ 3, b ≤ 3 (and n·b small)")
	}

	fmt.Printf("view complexes of the %d-round IIS full-information protocol, %d processes\n", *b, *n+1)
	for r := 0; r <= *b; r++ {
		vc := protocol.ViewComplex(*n, r)
		sds := topology.SDSPow(topology.Simplex(*n), r)
		eq := vc.Equal(sds)
		fmt.Printf("  b=%d: f-vector %v, facets %d, SDS^%d match: %v\n",
			r, vc.FVector(), len(vc.Facets()), r, eq)
		if !eq {
			return fmt.Errorf("view complex differs from SDS^%d — Lemma 3.3 violated", r)
		}
	}

	fmt.Println("one-shot outcomes by IS properties vs ordered partitions (Lemma 3.2):")
	for m := 1; m <= min(*n+1, 4); m++ {
		props := len(protocol.AllISOutputs(m))
		parts := topology.CountOrderedPartitions(m)
		fmt.Printf("  m=%d participants: %d property-satisfying outcomes, Fubini(%d)=%d\n", m, props, m, parts)
	}
	return nil
}

// cmdHomology reproduces the computational instances of Lemma 2.2: Betti
// numbers of subdivided simplices over GF(2).
func cmdHomology(args []string) error {
	fs := newFlagSet("homology")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cases := []struct {
		name string
		c    *topology.Complex
	}{
		{"s2", topology.Simplex(2)},
		{"SDS(s1)", topology.SDS(topology.Simplex(1))},
		{"SDS(s2)", topology.SDS(topology.Simplex(2))},
		{"SDS2(s2)", topology.SDSPow(topology.Simplex(2), 2)},
		{"SDS(s3)", topology.SDS(topology.Simplex(3))},
		{"Bsd(s2)", topology.Bsd(topology.Simplex(2))},
		{"Bsd2(s2)", topology.BsdPow(topology.Simplex(2), 2)},
	}
	fmt.Println("GF(2) Betti numbers (Lemma 2.2: subdivided simplices have no holes)")
	for _, tc := range cases {
		betti := homology.BettiNumbers(tc.c)
		fmt.Printf("  %-10s f=%v  Betti=%v  acyclic=%v\n",
			tc.name, tc.c.FVector(), betti, homology.IsAcyclic(tc.c))
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
