package main

import (
	"fmt"
	"math/rand"

	"waitfree/internal/converge"
	"waitfree/internal/topology"
)

// cmdSperner samples random Sperner labelings of SDS^b(sⁿ) and reports
// panchromatic-facet counts — the engine of the set-consensus impossibility.
func cmdSperner(args []string) error {
	fs := newFlagSet("sperner")
	n := fs.Int("n", 2, "dimension (processes − 1)")
	b := fs.Int("b", 2, "subdivision level")
	samples := fs.Int("samples", 20, "random labelings to draw")
	seed := fs.Int64("seed", 1, "PRNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n > 3 || *b > 3 || (*n >= 3 && *b >= 2) {
		return fmt.Errorf("keep n ≤ 3, b ≤ 3 (and n·b small): SDS^b grows exponentially")
	}
	c := topology.SDSPow(topology.Simplex(*n), *b)
	rng := rand.New(rand.NewSource(*seed))

	fmt.Printf("Sperner's lemma on SDS^%d(s%d) (%d facets): panchromatic counts must be odd\n",
		*b, *n, len(c.Facets()))
	counts := map[int]int{}
	min := len(c.Facets())
	for s := 0; s < *samples; s++ {
		label := topology.RandomSpernerLabeling(c, rng)
		k, err := topology.CountPanchromatic(c, label)
		if err != nil {
			return err
		}
		if k%2 == 0 {
			return fmt.Errorf("even panchromatic count %d — Sperner violated?!", k)
		}
		counts[k]++
		if k < min {
			min = k
		}
	}
	fmt.Printf("  %d samples, all odd; minimum observed %d; distribution: %v\n", *samples, min, counts)
	nat, _ := topology.CountPanchromatic(c, topology.NaturalLabeling(c))
	fmt.Printf("  the chromatic coloring itself makes every facet panchromatic: %d\n", nat)
	return nil
}

// cmdNCSAC compiles and runs §5's non-chromatic simplex agreement over a
// path complex.
func cmdNCSAC(args []string) error {
	fs := newFlagSet("ncsac")
	length := fs.Int("path", 3, "vertices in the target path complex")
	trials := fs.Int("trials", 10, "distributed runs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c := topology.NewComplex()
	var vs []topology.Vertex
	for i := 0; i < *length; i++ {
		vs = append(vs, c.MustAddVertex(fmt.Sprintf("a%d", i), topology.Uncolored))
	}
	for i := 0; i+1 < len(vs); i++ {
		c.MustAddSimplex(vs[i], vs[i+1])
	}
	c.Seal()

	fmt.Printf("NCSAC over a %d-vertex path (connected ⇒ solvable, §5)\n", *length)
	sol, err := converge.SolveNCSACTwoProcess(c, 3)
	if err != nil {
		return err
	}
	fmt.Printf("  decision map compiled at level %d\n", sol.K)
	inputs := [2]topology.Vertex{0, topology.Vertex(*length - 1)}
	for tr := 0; tr < *trials; tr++ {
		out, err := converge.RunNCSAC(sol, inputs, nil)
		if err != nil {
			return err
		}
		if err := converge.ValidateNCSAC(sol, inputs, out, -1); err != nil {
			return err
		}
		fmt.Printf("  trial %d: opposite-end inputs converged to (%s, %s)\n",
			tr, c.Key(out[0]), c.Key(out[1]))
	}
	return nil
}
