package main

import (
	"strings"
	"testing"
)

// TestSubcommandsRun exercises every CLI path with small parameters; each
// subcommand validates its own experiment and returns an error on any
// property violation, so "no error" is a meaningful check.
func TestSubcommandsRun(t *testing.T) {
	cases := [][]string{
		{"emulate", "-n", "2", "-k", "2", "-trials", "1"},
		{"emulate", "-n", "2", "-k", "2", "-trials", "1", "-crash", "0", "-show"},
		{"complex", "-n", "2", "-b", "1"},
		{"homology"},
		{"solve", "-maxb", "1"},
		{"twoproc"},
		{"converge", "-n", "1", "-target", "1", "-trials", "2", "-maxk", "2"},
		{"rename", "-n", "3", "-trials", "2"},
		{"bg", "-sim", "2", "-m", "3", "-f", "1", "-crashes", "0", "-trials", "1"},
		{"bound", "-n", "2"},
		{"adversary", "-algo", "commitadopt", "-adv", "priority-inversion", "-n", "3", "-crash", "2,-1,-1"},
		{"adversary", "-algo", "setconsensus", "-adv", "solo-0", "-n", "3", "-maxsteps", "2000"},
		{"adversary", "-algo", "renaming", "-adv", "random", "-seed", "42", "-n", "3"},
		{"adversary", "-algo", "renaming-emulated", "-adv", "round-robin", "-n", "3"},
		{"adversary", "-algo", "approx", "-adv", "laggard", "-n", "3", "-crash", "-1,3,-1"},
		{"adversary", "-algo", "fullinfo", "-adv", "block-1", "-n", "3"},
		{"adversary", "-algo", "bg", "-adv", "random", "-seed", "7", "-n", "3", "-crash", "-1,-1,9"},
		{"modelcheck", "-n", "3"},
		{"sperner", "-n", "2", "-b", "1", "-samples", "5"},
		{"ncsac", "-path", "3", "-trials", "2"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, "_"), func(t *testing.T) {
			if err := run(args); err != nil {
				t.Fatalf("run(%v): %v", args, err)
			}
		})
	}
}

func TestRunRejectsUnknownAndEmpty(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("empty args should fail")
	}
	if err := run([]string{"nonsense"}); err == nil {
		t.Error("unknown subcommand should fail")
	}
}

func TestGuardsRejectExplosiveParameters(t *testing.T) {
	if err := run([]string{"complex", "-n", "3", "-b", "3"}); err == nil {
		t.Error("oversized complex enumeration should be rejected")
	}
	if err := run([]string{"sperner", "-n", "3", "-b", "3"}); err == nil {
		t.Error("oversized Sperner instance should be rejected")
	}
	if err := run([]string{"bg", "-crashes", "3", "-f", "1"}); err == nil {
		t.Error("crashes > f should be rejected (would block)")
	}
	if err := run([]string{"adversary", "-algo", "commitadopt", "-n", "2", "-crash", "0,0"}); err == nil {
		t.Error("crashing every process should be rejected (not a proper subset)")
	}
	if err := run([]string{"adversary", "-adv", "solo-5", "-n", "3"}); err == nil {
		t.Error("out-of-range solo adversary should be rejected")
	}
}
