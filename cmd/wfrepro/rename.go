package main

import (
	"fmt"

	"waitfree/internal/bg"
	"waitfree/internal/tasks"
)

// cmdRename runs the wait-free (2p−1)-renaming algorithm.
func cmdRename(args []string) error {
	fs := newFlagSet("rename")
	procs := fs.Int("n", 4, "number of processes")
	trials := fs.Int("trials", 10, "independent runs")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Printf("wait-free snapshot renaming, %d processes, target name space [1, %d]\n", *procs, 2**procs-1)
	maxName, maxSteps := 0, 0
	for t := 0; t < *trials; t++ {
		res, err := tasks.RunRenaming(*procs, nil, nil)
		if err != nil {
			return err
		}
		if err := tasks.ValidateRenaming(res, *procs); err != nil {
			return fmt.Errorf("trial %d: %w", t, err)
		}
		for i, name := range res.Names {
			if name > maxName {
				maxName = name
			}
			if res.Steps[i] > maxSteps {
				maxSteps = res.Steps[i]
			}
		}
	}
	fmt.Printf("  %d runs: all names distinct; max name used %d (bound %d); max scan iterations %d\n",
		*trials, maxName, 2**procs-1, maxSteps)
	return nil
}

// cmdBG runs the Borowsky–Gafni simulation demo: simulators drive an
// f-resilient set consensus protocol of m simulated processes, surviving up
// to f simulator crashes.
func cmdBG(args []string) error {
	fs := newFlagSet("bg")
	nSim := fs.Int("sim", 3, "number of simulators")
	mProc := fs.Int("m", 5, "number of simulated processes")
	f := fs.Int("f", 2, "resilience of the simulated protocol (crashes tolerated)")
	crashes := fs.Int("crashes", 1, "simulators to crash (must be ≤ f)")
	trials := fs.Int("trials", 5, "independent runs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *crashes > *f {
		return fmt.Errorf("%d crashes exceed the simulated resilience f=%d; the run would block", *crashes, *f)
	}

	inputs := make([]int, *nSim)
	for i := range inputs {
		inputs[i] = 10 * (i + 1)
	}
	fmt.Printf("BG simulation: %d simulators run %d simulated processes of %d-resilient set consensus\n",
		*nSim, *mProc, *f)
	for t := 0; t < *trials; t++ {
		sim := bg.NewSimulation(*nSim, *mProc, &bg.SetConsensusCode{MProc: *mProc, F: *f, Inputs: inputs})
		var crashAfter []int
		if *crashes > 0 {
			crashAfter = make([]int, *nSim)
			for i := range crashAfter {
				crashAfter[i] = -1
			}
			for i := 0; i < *crashes; i++ {
				crashAfter[i] = 3 + i // crash early, inside the simulation
			}
		}
		res := sim.RunAll(crashAfter)
		distinct := make(map[int]bool)
		for _, d := range res.Adopted {
			if d >= 0 {
				distinct[d] = true
			}
		}
		fmt.Printf("  trial %d: adopted=%v (%d distinct ≤ %d), simulated decisions=%d\n",
			t, res.Adopted, len(distinct), *f+1, len(res.Simulated))
		if len(distinct) > *f+1 {
			return fmt.Errorf("agreement bound violated")
		}
	}
	return nil
}
