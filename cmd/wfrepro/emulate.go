package main

import (
	"fmt"

	"waitfree/internal/core"
)

// cmdEmulate reproduces Figures 1 and 2: it runs the k-shot atomic snapshot
// full-information protocol natively and through the iterated immediate
// snapshot emulation, validates both traces against the atomic snapshot
// execution specification, and reports the emulation's memory overhead.
func cmdEmulate(args []string) error {
	fs := newFlagSet("emulate")
	n := fs.Int("n", 3, "number of processes")
	k := fs.Int("k", 3, "shots per process (Figure 1's k)")
	trials := fs.Int("trials", 5, "independent runs")
	crash := fs.Int("crash", -1, "process id to crash after its first write (-1: none)")
	show := fs.Bool("show", false, "render one emulated trace as a timeline")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var crashes []int
	if *crash >= 0 && *crash < *n {
		crashes = make([]int, *n)
		for i := range crashes {
			crashes[i] = -1
		}
		crashes[*crash] = 1
	}
	cfg := core.RunConfig{N: *n, K: *k, CrashAfterOps: crashes}

	fmt.Printf("Figure 1 (native atomic snapshot), n=%d k=%d, %d trials\n", *n, *k, *trials)
	for t := 0; t < *trials; t++ {
		tr, err := core.RunKShot(core.NewDirectMemory(*n), cfg)
		if err != nil {
			return err
		}
		if err := tr.Validate(); err != nil {
			return fmt.Errorf("native trace invalid: %w", err)
		}
	}
	fmt.Println("  all native traces satisfy the atomic snapshot specification")

	fmt.Printf("Figure 2 (emulation over iterated immediate snapshots)\n")
	var totalMems, maxMems int
	for t := 0; t < *trials; t++ {
		mem := core.NewEmulatedMemory(*n)
		tr, err := core.RunKShot(mem, cfg)
		if err != nil {
			return err
		}
		if err := tr.Validate(); err != nil {
			return fmt.Errorf("emulated trace invalid (Prop 4.1 violated): %w", err)
		}
		for _, m := range mem.MemoriesUsed() {
			totalMems += m
			if m > maxMems {
				maxMems = m
			}
		}
	}
	ops := 2 * *k
	fmt.Println("  all emulated traces satisfy the atomic snapshot specification (Prop 4.1)")
	fmt.Printf("  one-shot memories used per process: avg %.2f, max %d (%d emulated ops each; ≥1 memory per op)\n",
		float64(totalMems)/float64(*trials**n), maxMems, ops)

	if *show {
		tr, err := core.RunKShot(core.NewEmulatedMemory(*n), cfg)
		if err != nil {
			return err
		}
		fmt.Println("\none emulated trace (global tick timeline):")
		fmt.Print(tr.Render())
	}
	return nil
}
