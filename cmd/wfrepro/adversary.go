package main

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"waitfree/internal/bg"
	"waitfree/internal/core"
	"waitfree/internal/protocol"
	"waitfree/internal/sched"
	"waitfree/internal/tasks"
)

// cmdAdversary runs one concurrent runtime under a chosen deterministic
// adversary schedule with optional crash injection, and reports the schedule
// decisions, per-process step counts, and the (validated) outcome. The same
// flags always reproduce the same execution — a failing combination is a
// regression test in one line.
func cmdAdversary(args []string) error {
	fs := newFlagSet("adversary")
	algo := fs.String("algo", "commitadopt",
		"runtime to schedule: commitadopt|setconsensus|renaming|renaming-emulated|approx|fullinfo|bg")
	advName := fs.String("adv", "round-robin", "adversary: "+strings.Join(sched.AdversaryNames(), ", "))
	seed := fs.Int64("seed", 1, "seed for the random adversary")
	n := fs.Int("n", 3, "number of processes")
	crash := fs.String("crash", "", "comma-separated crash steps per process, -1 = never (e.g. 2,-1,4)")
	maxSteps := fs.Int("maxsteps", 0, "step budget (0 = default, negative = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 {
		return fmt.Errorf("need at least one process")
	}
	crashAt, err := parseCrashVector(*crash, *n)
	if err != nil {
		return err
	}
	adv, err := sched.NewAdversary(*advName, *seed, *n)
	if err != nil {
		return err
	}
	ctl := sched.New(sched.Config{Procs: *n, Adversary: adv, CrashAt: crashAt, MaxSteps: *maxSteps})

	fmt.Printf("deterministic schedule: algo=%s adversary=%s seed=%d procs=%d crash=%v\n",
		*algo, adv.Name(), *seed, *n, crashAt)

	var outcome, memories string
	var runErr error
	switch *algo {
	case "commitadopt":
		inputs := make([]int, *n)
		for i := range inputs {
			inputs[i] = 10 * (1 + i%2) // mixed inputs: commit is not forced
		}
		var out []tasks.CADecision
		out, runErr = tasks.RunCommitAdopt(inputs, nil, sched.Under(ctl))
		if runErr == nil {
			if err := tasks.ValidateCommitAdopt(inputs, out); err != nil {
				return err
			}
		}
		parts := make([]string, len(out))
		for i, d := range out {
			switch {
			case !d.Decided:
				parts[i] = "crashed"
			case d.Committed:
				parts[i] = fmt.Sprintf("COMMIT %d", d.Val)
			default:
				parts[i] = fmt.Sprintf("adopt %d", d.Val)
			}
		}
		outcome = strings.Join(parts, ", ")
		memories = "2 atomic snapshot objects (register granularity)"
	case "setconsensus":
		inputs := make([]int, *n)
		for i := range inputs {
			inputs[i] = i + 1
		}
		f := crashes(crashAt)
		if f == 0 {
			f = 1
		}
		var res *tasks.SetConsensusResult
		res, runErr = tasks.RunFResilientSetConsensus(inputs, f, nil, sched.Under(ctl))
		if res != nil {
			if err := tasks.ValidateSetConsensus(inputs, res, f+1); err != nil {
				return err
			}
			outcome = fmt.Sprintf("decisions=%v scans=%v (f=%d, ≤%d distinct)", res.Decisions, res.Scans, f, f+1)
		}
		memories = "1 atomic snapshot object (register granularity)"
	case "renaming":
		var res *tasks.RenamingResult
		res, runErr = tasks.RunRenaming(*n, nil, nil, sched.Under(ctl))
		if runErr == nil {
			if err := tasks.ValidateRenaming(res, *n); err != nil {
				return err
			}
			outcome = fmt.Sprintf("names=%v (bound %d) iterations=%v", res.Names, 2**n-1, res.Steps)
		}
		memories = "1 atomic snapshot object (register granularity)"
	case "renaming-emulated":
		var res *tasks.RenamingResult
		res, runErr = tasks.RunRenamingOver(core.NewEmulatedMemory(*n), *n, nil, nil, sched.Under(ctl))
		if runErr == nil {
			if err := tasks.ValidateRenaming(res, *n); err != nil {
				return err
			}
			outcome = fmt.Sprintf("names=%v (bound %d) shots=%v", res.Names, 2**n-1, res.Steps)
		}
		memories = "iterated immediate snapshot memory via the Figure-2 emulation"
	case "approx":
		inputs := make([]float64, *n)
		for i := range inputs {
			inputs[i] = float64(i) / float64(*n)
		}
		const eps = 0.05
		var res *tasks.ApproxResult
		res, runErr = tasks.RunApproxAgreement(inputs, eps, nil, sched.Under(ctl))
		if runErr == nil {
			if err := tasks.ValidateApprox(inputs, res, eps); err != nil {
				return err
			}
			parts := make([]string, len(res.Outputs))
			for i, x := range res.Outputs {
				if math.IsNaN(x) {
					parts[i] = "crashed"
				} else {
					parts[i] = fmt.Sprintf("%.4f", x)
				}
			}
			outcome = fmt.Sprintf("outputs=[%s] (ε=%g)", strings.Join(parts, " "), eps)
			memories = fmt.Sprintf("%d-round iterated immediate snapshot memory", res.Rounds)
		}
	case "fullinfo":
		const b = 2
		var res *protocol.RunResult
		res, runErr = protocol.RunFullInfo(*n, b, nil, sched.Under(ctl))
		if res != nil {
			parts := make([]string, len(res.Keys))
			for i, k := range res.Keys {
				if k == "" {
					k = "crashed"
				}
				parts[i] = k
			}
			outcome = fmt.Sprintf("SDS^%d views: %s", b, strings.Join(parts, ", "))
		}
		memories = fmt.Sprintf("%d-round iterated immediate snapshot memory", b)
	case "bg":
		inputs := make([]int, *n)
		for i := range inputs {
			inputs[i] = 10 * (i + 1)
		}
		f := *n - 1 // tolerate any proper subset of simulator crashes
		sim := bg.NewSimulation(*n, *n+2, &bg.SetConsensusCode{MProc: *n + 2, F: f, Inputs: inputs})
		var res *bg.Result
		res, runErr = sim.RunAllScheduled(nil, sched.Under(ctl))
		if res != nil {
			outcome = fmt.Sprintf("adopted=%v simulated=%v", res.Adopted, res.Simulated)
		}
		memories = "1 board snapshot + per-(process,step) safe agreement objects"
	default:
		return fmt.Errorf("unknown algo %q", *algo)
	}

	var be *sched.BudgetError
	if runErr != nil && !errors.As(runErr, &be) {
		return runErr
	}

	fmt.Printf("  schedule decisions: %d total, per-process steps %v\n", ctl.TotalSteps(), ctl.StepCounts())
	fmt.Printf("  trace prefix: %s\n", traceString(ctl.Trace(), 48))
	statuses := make([]string, *n)
	for p := 0; p < *n; p++ {
		statuses[p] = fmt.Sprintf("P%d=%s", p, ctl.StatusOf(p))
	}
	fmt.Printf("  statuses: %s\n", strings.Join(statuses, " "))
	fmt.Printf("  memories: %s\n", memories)
	if be != nil {
		fmt.Printf("  VERDICT: not wait-free under this schedule — %v\n", be)
		return nil
	}
	fmt.Printf("  outcome: %s\n", outcome)
	return nil
}

// parseCrashVector parses "2,-1,4" into a CrashAt vector of length n.
func parseCrashVector(s string, n int) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	fields := strings.Split(s, ",")
	if len(fields) > n {
		return nil, fmt.Errorf("crash vector has %d entries for %d processes", len(fields), n)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	live := 0
	for i, f := range fields {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad crash entry %q: %w", f, err)
		}
		out[i] = v
		if v < 0 {
			live++
		}
	}
	live += n - len(fields)
	if live == 0 {
		return nil, fmt.Errorf("crash vector %v crashes every process; wait-freedom is about proper subsets", out)
	}
	return out, nil
}

func crashes(crashAt []int) int {
	c := 0
	for _, v := range crashAt {
		if v >= 0 {
			c++
		}
	}
	return c
}

// traceString renders a granted-process sequence, truncated for display.
func traceString(trace []int, limit int) string {
	var b strings.Builder
	for i, p := range trace {
		if i == limit {
			fmt.Fprintf(&b, "… (%d more)", len(trace)-limit)
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.Itoa(p))
	}
	if len(trace) == 0 {
		return "(empty)"
	}
	return b.String()
}
