package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"waitfree/internal/engine"
	"waitfree/internal/sched"
)

// cmdAdversary runs one concurrent runtime under a chosen deterministic
// adversary schedule with optional crash injection, and reports the schedule
// decisions, per-process step counts, and the (validated) outcome. The same
// flags always reproduce the same execution — a failing combination is a
// regression test in one line. The replay itself lives in the engine
// (engine.RunAdversary), shared with the /v1/adversary service endpoint.
func cmdAdversary(args []string) error {
	fs := newFlagSet("adversary")
	algo := fs.String("algo", "commitadopt",
		"runtime to schedule: "+strings.Join(engine.AdversaryAlgos(), "|"))
	advName := fs.String("adv", "round-robin", "adversary: "+strings.Join(sched.AdversaryNames(), ", "))
	seed := fs.Int64("seed", 1, "seed for the random adversary")
	n := fs.Int("n", 3, "number of processes")
	crash := fs.String("crash", "", "comma-separated crash steps per process, -1 = never (e.g. 2,-1,4)")
	maxSteps := fs.Int("maxsteps", 0, "step budget (0 = default, negative = unlimited)")
	asJSON := fs.Bool("json", false, "emit the /v1/adversary response JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	crashAt, err := engine.ParseCrashVector(*crash, *n)
	if err != nil {
		return err
	}
	resp, err := engine.RunAdversary(engine.AdversaryRequest{
		Algo:      *algo,
		Adversary: *advName,
		Seed:      *seed,
		Procs:     *n,
		Crash:     crashAt,
		MaxSteps:  *maxSteps,
	})
	if err != nil {
		return err
	}
	if *asJSON {
		return engine.WriteJSON(os.Stdout, resp)
	}

	fmt.Printf("deterministic schedule: algo=%s adversary=%s seed=%d procs=%d crash=%v\n",
		resp.Algo, resp.Adversary, resp.Seed, resp.Procs, resp.Crash)
	fmt.Printf("  schedule decisions: %d total, per-process steps %v\n", resp.TotalSteps, resp.StepCounts)
	fmt.Printf("  trace prefix: %s\n", traceString(resp.TracePrefix, resp.TraceLen))
	statuses := make([]string, len(resp.Statuses))
	for p, s := range resp.Statuses {
		statuses[p] = fmt.Sprintf("P%d=%s", p, s)
	}
	fmt.Printf("  statuses: %s\n", strings.Join(statuses, " "))
	fmt.Printf("  memories: %s\n", resp.Memories)
	if !resp.WaitFree {
		fmt.Printf("  VERDICT: not wait-free under this schedule — %s\n", resp.Budget)
		return nil
	}
	fmt.Printf("  outcome: %s\n", resp.Outcome)
	return nil
}

// traceString renders a granted-process prefix; totalLen is the full trace
// length, so a truncated prefix reports how much was elided.
func traceString(prefix []int, totalLen int) string {
	if totalLen == 0 {
		return "(empty)"
	}
	var b strings.Builder
	for i, p := range prefix {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.Itoa(p))
	}
	if totalLen > len(prefix) {
		fmt.Fprintf(&b, " … (%d more)", totalLen-len(prefix))
	}
	return b.String()
}
