package main

import "fmt"

// cmdAll runs every experiment in sequence with its default parameters —
// the one-command reproduction script.
func cmdAll(args []string) error {
	fs := newFlagSet("all")
	if err := fs.Parse(args); err != nil {
		return err
	}
	steps := []struct {
		name string
		args []string
		fn   func([]string) error
	}{
		{"emulate (Figures 1 & 2, Prop 4.1)", []string{"-n", "3", "-k", "3", "-trials", "3"}, cmdEmulate},
		{"complex (Lemmas 3.2/3.3)", []string{"-n", "2", "-b", "2"}, cmdComplex},
		{"homology (Lemma 2.2)", nil, cmdHomology},
		{"bound (Lemma 3.1)", []string{"-n", "2"}, cmdBound},
		{"modelcheck (exhaustive schedules)", []string{"-n", "3"}, cmdModelCheck},
		{"solve (Prop 3.1 verdicts)", []string{"-maxb", "2"}, cmdSolve},
		{"twoproc (exact 2-process decidability)", nil, cmdTwoProc},
		{"converge (Theorem 5.1 / CSASS)", []string{"-trials", "5"}, cmdConverge},
		{"sperner (impossibility engine)", []string{"-samples", "10"}, cmdSperner},
		{"ncsac (§5 simplex agreement)", []string{"-trials", "3"}, cmdNCSAC},
		{"rename (wait-free 2p−1 renaming)", []string{"-trials", "5"}, cmdRename},
		{"bg (Borowsky–Gafni simulation)", []string{"-trials", "2"}, cmdBG},
	}
	for i, s := range steps {
		fmt.Printf("\n=== [%d/%d] %s ===\n", i+1, len(steps), s.name)
		if err := s.fn(s.args); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	fmt.Println("\nall experiments reproduced; see EXPERIMENTS.md for the recorded results")
	return nil
}
