package main

import (
	"fmt"
	"os"

	"waitfree/internal/engine"
	"waitfree/internal/model"
	"waitfree/internal/solver"
	"waitfree/internal/tasks"
)

// cmdSolve reproduces Proposition 3.1 as a decision procedure: it reports
// solvability verdicts for the classic tasks at bounded subdivision levels.
// With -json it answers one query through the engine and emits exactly the
// /v1/solve response bytes.
func cmdSolve(args []string) error {
	fs := newFlagSet("solve")
	maxB := fs.Int("maxb", 2, "maximum subdivision level to check")
	asJSON := fs.Bool("json", false, "emit the /v1/solve response JSON for one query (requires -family)")
	family := fs.String("family", "", "task family for -json: one of "+fmt.Sprint(engine.Families()))
	procs := fs.Int("procs", 0, "processes for -json")
	k := fs.Int("k", 0, "set-consensus k for -json")
	d := fs.Int("d", 0, "approx-agreement denominator for -json (ε = 1/d)")
	m := fs.Int("m", 0, "renaming namespace parameter for -json")
	maxNodes := fs.Int64("maxnodes", 0, "per-level search node budget for -json (0 = engine default)")
	modelFlag := fs.String("model", "", "affine model: wait-free (default), <t>-resilient, <k>-concurrency, <k>-set")
	trace := fs.Bool("trace", false, "with -json: print the request's span tree to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signalContext()
	defer stop()
	if *asJSON {
		ctx, flush := withTrace(ctx, *trace)
		resp, err := engine.New(engine.Options{}).Solve(ctx, engine.SolveRequest{
			Spec:     engine.TaskSpec{Family: *family, Procs: *procs, K: *k, D: *d, M: *m},
			MaxLevel: *maxB,
			MaxNodes: *maxNodes,
			Model:    *modelFlag,
		})
		flush()
		if err != nil {
			return err
		}
		return engine.WriteJSON(os.Stdout, resp)
	}

	spec, err := model.Parse(*modelFlag)
	if err != nil {
		return err
	}
	type job struct {
		task *tasks.Task
		maxB int
	}
	jobs := []job{
		{tasks.IdentityTask(3), 0},
		{tasks.SetConsensus(3, 3), 0},
		{tasks.Renaming(2, 3), 0},
		{tasks.ApproxAgreement(2), *maxB},
		{tasks.ApproxAgreement(4), *maxB},
		{tasks.Consensus(2), *maxB},
		{tasks.SetConsensus(3, 2), min(*maxB, 1)},
	}
	if spec.IsWaitFree() {
		fmt.Println("Proposition 3.1 checker: ∃ color-preserving simplicial map SDS^b(I) → O respecting Δ?")
	} else {
		fmt.Printf("Proposition 3.1 checker (%s): ∃ color-preserving simplicial map R^b(I) → O respecting Δ?\n", spec.Canonical())
	}
	opts := solver.Options{Restrict: spec.Filter()}
	if !spec.IsWaitFree() {
		opts.Model = spec.Canonical()
	}
	for _, j := range jobs {
		if err := spec.Validate(len(j.task.Inputs.Colors())); err != nil {
			fmt.Printf("  %-24s skipped: %v\n", j.task.Name, err)
			continue
		}
		res, err := solver.SolveUpToCtx(ctx, j.task, j.maxB, opts)
		if err != nil {
			fmt.Printf("  %-24s budget exceeded: %v\n", j.task.Name, err)
			continue
		}
		verdict := fmt.Sprintf("UNSOLVABLE for all b ≤ %d (proven by exhaustion)", res.Level)
		if res.Solvable {
			verdict = fmt.Sprintf("SOLVABLE at b = %d", res.Level)
			if err := solver.VerifyDecisionMap(j.task, res); err != nil {
				return fmt.Errorf("%s: found map fails verification: %w", j.task.Name, err)
			}
		}
		fmt.Printf("  %-24s %s  (%d nodes)\n", j.task.Name, verdict, res.Nodes)
	}
	fmt.Println("note: unsolvability at bounded b is exact for these instances; the general")
	fmt.Println("question is undecidable for ≥ 3 processes [Gafni–Koutsoupias 1995].")
	return nil
}
