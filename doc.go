// Package waitfree is a from-scratch Go reproduction of Borowsky & Gafni,
// "A Simple Algorithmically Reasoned Characterization of Wait-free
// Computations" (PODC 1997).
//
// The library lives in internal packages, organized by the paper's own
// structure:
//
//   - internal/register  — SWMR registers and wait-free atomic snapshots (§3.1)
//   - internal/immediate — one-shot immediate snapshot objects (§3.4)
//   - internal/iis       — the iterated immediate snapshot model (§3.5)
//   - internal/core      — Figure 1, and the paper's main result: the Figure 2
//     emulation of atomic snapshot memory over iterated
//     immediate snapshots (Proposition 4.1)
//   - internal/topology  — chromatic complexes, SDS, Bsd, simplicial maps (§2)
//   - internal/homology  — GF(2) Betti numbers ("no holes", Lemma 2.2)
//   - internal/protocol  — view complexes = SDS^b (Lemmas 3.2/3.3), the
//     König-tree bound of Lemma 3.1
//   - internal/tasks     — tasks as (I, O, Δ) triples plus runtime algorithms
//   - internal/solver    — the Proposition 3.1 solvability checker
//   - internal/converge  — Theorem 5.1 map search and simplex agreement (§5)
//   - internal/bg        — safe agreement and the BG simulation
//
// See README.md for a guided tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks in
// bench_test.go regenerate every experiment; cmd/wfrepro drives them from
// the shell; examples/ holds six runnable walkthroughs.
package waitfree
