// Emulation: the paper's main theorem at work (Figure 2 / Proposition 4.1).
//
// The same k-shot atomic snapshot full-information protocol (Figure 1) is
// run twice: once on a native wait-free atomic snapshot object, and once on
// top of the iterated immediate snapshot model through the emulation. Both
// traces are checked against the same atomic-snapshot execution
// specification — the emulation is indistinguishable — and the emulated
// run's cost in one-shot memories is reported, including under a crash.
package main

import (
	"fmt"
	"log"

	"waitfree/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n = 3
		k = 4
	)
	cfg := core.RunConfig{N: n, K: k}

	// Native run (Figure 1).
	native, err := core.RunKShot(core.NewDirectMemory(n), cfg)
	if err != nil {
		return err
	}
	if err := native.Validate(); err != nil {
		return fmt.Errorf("native: %w", err)
	}
	fmt.Printf("native run: %d ops, trace satisfies the atomic snapshot spec\n", len(native.Ops))

	// Emulated run (Figure 2).
	mem := core.NewEmulatedMemory(n)
	emulated, err := core.RunKShot(mem, cfg)
	if err != nil {
		return err
	}
	if err := emulated.Validate(); err != nil {
		return fmt.Errorf("emulated: %w", err)
	}
	fmt.Printf("emulated run: %d ops, trace satisfies the same spec (Proposition 4.1)\n", len(emulated.Ops))
	fmt.Printf("  one-shot memories consumed per emulator: %v (2k = %d ops each)\n", mem.MemoriesUsed(), 2*k)

	// A snapshot view from the emulated run, to make the equivalence
	// concrete: the final read of process 0.
	for i := len(emulated.Ops) - 1; i >= 0; i-- {
		op := emulated.Ops[i]
		if op.Kind == core.OpRead && op.Proc == 0 {
			fmt.Printf("  P0's final emulated snapshot: seqs=%v\n", op.Seqs)
			break
		}
	}

	// Crash tolerance: P1 stops after one op; the rest must still finish.
	crashes := []int{-1, 1, -1}
	mem2 := core.NewEmulatedMemory(n)
	tr, err := core.RunKShot(mem2, core.RunConfig{N: n, K: k, CrashAfterOps: crashes})
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("crashed run: %w", err)
	}
	fmt.Printf("with P1 crashed after 1 op: %d ops completed by survivors, trace still valid\n", len(tr.Ops))
	return nil
}
