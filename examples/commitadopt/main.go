// Commit-adopt: graded agreement, the wait-free core of agreement protocols.
//
// Consensus is unsolvable wait-free (see examples/characterization), but its
// graded relaxation is solvable — and this gap is precisely what the
// characterization explains: commit-adopt's output complex stays connected.
// The example runs commit-adopt under unanimity, conflict, and crashes.
package main

import (
	"fmt"
	"log"

	"waitfree/internal/tasks"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	show := func(label string, inputs []int, crash []int) error {
		out, err := tasks.RunCommitAdopt(inputs, crash)
		if err != nil {
			return err
		}
		if err := tasks.ValidateCommitAdopt(inputs, out); err != nil {
			return err
		}
		fmt.Printf("%s (inputs %v):\n", label, inputs)
		for i, d := range out {
			switch {
			case !d.Decided:
				fmt.Printf("  P%d: crashed\n", i)
			case d.Committed:
				fmt.Printf("  P%d: COMMIT %d\n", i, d.Val)
			default:
				fmt.Printf("  P%d: adopt %d\n", i, d.Val)
			}
		}
		return nil
	}

	if err := show("unanimous", []int{4, 4, 4}, nil); err != nil {
		return err
	}
	if err := show("conflicting", []int{1, 2, 1}, nil); err != nil {
		return err
	}
	if err := show("crash after round 1", []int{7, 7, 9}, []int{-1, 1, -1}); err != nil {
		return err
	}
	fmt.Println("\nguarantees held in every run: validity, unanimity ⇒ all commit,")
	fmt.Println("and any commit forces every decider onto the committed value.")
	return nil
}
