// Quickstart: the two memory models of the paper in ~60 lines.
//
// It runs a one-shot immediate snapshot among three concurrent processes,
// prints the views, checks the three immediate-snapshot properties of §3.5,
// and then walks the same processes through three rounds of the iterated
// model, locating the final views as vertices of SDS³(s²).
package main

import (
	"fmt"
	"log"
	"sync"

	"waitfree/internal/immediate"
	"waitfree/internal/protocol"
	"waitfree/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const procs = 3

	// --- One-shot immediate snapshot ---------------------------------
	one := immediate.New[string](procs)
	views := make([]immediate.View[string], procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := one.WriteRead(i, fmt.Sprintf("input-%d", i))
			if err != nil {
				log.Println(err)
				return
			}
			views[i] = v
		}(i)
	}
	wg.Wait()

	fmt.Println("one-shot immediate snapshot views:")
	for i, v := range views {
		var saw []string
		for j := range v {
			if v[j].Present {
				saw = append(saw, v[j].Val)
			}
		}
		fmt.Printf("  P%d saw %d value(s): %v\n", i, v.Size(), saw)
	}
	if err := immediate.CheckProperties(views); err != nil {
		return fmt.Errorf("IS properties violated: %w", err)
	}
	fmt.Println("  self-inclusion, comparability, immediacy: all hold")

	// --- Iterated immediate snapshots --------------------------------
	const rounds = 3
	res, err := protocol.RunFullInfo(procs, rounds, nil)
	if err != nil {
		return err
	}
	sds := topology.SDSPow(topology.Simplex(procs-1), rounds)
	simplex, err := protocol.LocateRun(sds, res)
	if err != nil {
		return err
	}
	fmt.Printf("\nafter %d iterated rounds, the %d final views form a simplex of SDS^%d(s²)\n",
		rounds, len(simplex), rounds)
	fmt.Printf("  (the complex has %d vertices and %d facets — Lemma 3.3)\n",
		sds.NumVertices(), len(sds.Facets()))
	return nil
}
