// Characterization: the paper's theorem as a compiler.
//
// The full pipeline on one task (ε-agreement on the grid {0,1,2}):
//
//  1. specify the task as complexes (I, O, Δ);
//  2. ask the checker for a decision map δ : SDS^b(I) → O  (Prop 3.1);
//  3. verify δ independently;
//  4. COMPILE δ into a distributed protocol and run it on live goroutines
//     over iterated immediate snapshot memory — with and without crashes;
//  5. contrast with consensus, where step 2 fails at every level (proven
//     exhaustively at small levels, and exactly via the 2-process decision
//     procedure).
package main

import (
	"fmt"
	"log"

	"waitfree/internal/solver"
	"waitfree/internal/tasks"
	"waitfree/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	task := tasks.ApproxAgreement(2)

	// 2. The checker finds the decision map.
	res, err := solver.SolveUpTo(task, 2, solver.Options{})
	if err != nil {
		return err
	}
	if !res.Solvable {
		return fmt.Errorf("ε-agreement must be solvable")
	}
	fmt.Printf("%s: decision map found at level b = %d (%d nodes)\n", task.Name, res.Level, res.Nodes)

	// 3. Independent verification.
	if err := solver.VerifyDecisionMap(task, res); err != nil {
		return err
	}
	fmt.Println("map verified: simplicial, color-preserving, Δ-respecting on every simplex")

	// 4. Compile and run.
	var inputs []topology.Vertex
	for i, val := range []string{"0", "2"} {
		for _, v := range task.Inputs.VerticesOfColor(i) {
			if task.InputValue(v) == val {
				inputs = append(inputs, v)
			}
		}
	}
	fmt.Println("\nexecuting the compiled protocol (inputs 0 and 2, ε-grid step 1):")
	for trial := 0; trial < 5; trial++ {
		out, err := solver.Execute(task, res, inputs, nil)
		if err != nil {
			return err
		}
		if err := solver.ValidateExecution(task, inputs, out, []int{0, 1}); err != nil {
			return err
		}
		fmt.Printf("  trial %d: P0 → %s, P1 → %s\n",
			trial, task.OutputValue(out[0]), task.OutputValue(out[1]))
	}

	out, err := solver.Execute(task, res, inputs, []int{0, -1}) // P0 crashes at start
	if err != nil {
		return err
	}
	if err := solver.ValidateExecution(task, inputs, out, []int{1}); err != nil {
		return err
	}
	fmt.Printf("  with P0 crashed: P1 alone decides %s (its own input — solo validity)\n",
		task.OutputValue(out[1]))

	// 5. The negative side.
	exact, err := solver.DecideTwoProcess(tasks.Consensus(2))
	if err != nil {
		return err
	}
	fmt.Printf("\nconsensus-2p: solvable = %v — by the exact 2-process procedure, at EVERY level\n",
		exact.Solvable)
	fmt.Println("(the same verdict the bounded checker proves by exhaustion; see `wfrepro solve`)")
	return nil
}
