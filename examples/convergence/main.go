// Convergence: Theorem 5.1 and chromatic simplex agreement, end to end.
//
// A non-standard chromatic subdivision A of the edge s¹ is built by hand (a
// 5-edge alternating path). The Theorem 5.1 search finds the level k and the
// color- and carrier-preserving simplicial map SDS^k(s¹) → A; two concurrent
// processes then run k rounds of iterated immediate snapshots and apply the
// map, converging onto a single edge (or vertex) of A.
package main

import (
	"fmt"
	"log"

	"waitfree/internal/converge"
	"waitfree/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base := topology.Simplex(1)

	// A: c0 —x1—x2—x3—x4— c1, alternating colors; carriers: corners sit on
	// the base vertices, interior vertices on the whole edge.
	a := topology.NewSubdivision(base)
	keys := []string{"c0", "x1", "x2", "x3", "x4", "c1"}
	colors := []int{0, 1, 0, 1, 0, 1}
	vs := make([]topology.Vertex, len(keys))
	for i, key := range keys {
		vs[i] = a.MustAddVertex(key, colors[i])
		switch i {
		case 0:
			a.SetCarrier(vs[i], []topology.Vertex{0})
		case len(keys) - 1:
			a.SetCarrier(vs[i], []topology.Vertex{1})
		default:
			a.SetCarrier(vs[i], []topology.Vertex{0, 1})
		}
	}
	for i := 0; i+1 < len(vs); i++ {
		a.MustAddSimplex(vs[i], vs[i+1])
	}
	a.Seal()
	fmt.Printf("target A: a %d-edge chromatic subdivision of s¹\n", len(a.Facets()))

	phi, k, err := converge.FindChromaticMap(base, a, 3)
	if err != nil {
		return err
	}
	fmt.Printf("Theorem 5.1 map found at k = %d (SDS^%d has %d edges)\n", k, k, pow(3, k))

	for trial := 0; trial < 5; trial++ {
		res, err := converge.RunSimplexAgreement(phi, k, 2, nil)
		if err != nil {
			return err
		}
		if err := converge.ValidateAgreement(a, res, []topology.Vertex{0, 1}); err != nil {
			return err
		}
		fmt.Printf("  trial %d: P0 → %s, P1 → %s\n",
			trial, a.Key(res.Outputs[0]), a.Key(res.Outputs[1]))
	}
	fmt.Println("every pair of outputs spans an edge of A — chromatic simplex agreement")
	return nil
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}
