// Renaming: the second benchmark task of the paper's introduction.
//
// Runs the wait-free snapshot-based renaming algorithm for several
// participation patterns — all processes, sparse participation, and a crash
// mid-protocol — validating distinctness and the (2p−1) name-space bound
// each time.
package main

import (
	"fmt"
	"log"

	"waitfree/internal/tasks"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const procs = 5

	// All participate.
	res, err := tasks.RunRenaming(procs, nil, nil)
	if err != nil {
		return err
	}
	if err := tasks.ValidateRenaming(res, procs); err != nil {
		return err
	}
	fmt.Printf("all %d processes: names %v (bound %d)\n", procs, res.Names, 2*procs-1)

	// Sparse participation: only processes 1 and 4 show up; with p = 2
	// participants the bound tightens to 3.
	participate := []bool{false, true, false, false, true}
	res, err = tasks.RunRenaming(procs, participate, nil)
	if err != nil {
		return err
	}
	if err := tasks.ValidateRenaming(res, 2); err != nil {
		return err
	}
	fmt.Printf("only P1 and P4: names %v (bound %d)\n", res.Names, 3)

	// Crash: P0 stops after its first scan; the survivors still rename.
	res, err = tasks.RunRenaming(procs, nil, []int{1, -1, -1, -1, -1})
	if err != nil {
		return err
	}
	if err := tasks.ValidateRenaming(res, procs); err != nil {
		return err
	}
	fmt.Printf("P0 crashed mid-protocol: names %v (0 = crashed, undecided)\n", res.Names)
	fmt.Printf("scan iterations per process: %v (wait-free: bounded, no waiting on the crash)\n", res.Steps)
	return nil
}
