// Solvability: using the characterization as a library decision procedure.
//
// Builds a custom task from scratch — "or-agreement": two processes with
// binary inputs must agree on the logical OR of the participating inputs —
// and asks the Proposition 3.1 checker whether it is wait-free solvable.
// (It is not: a process that runs solo with input 0 must output 0, one with
// input 1 must output 1, and agreement propagates the contradiction exactly
// as in consensus.) A relaxed variant that drops the agreement requirement
// is then shown solvable at level 0.
package main

import (
	"fmt"
	"log"

	"waitfree/internal/solver"
	"waitfree/internal/tasks"
	"waitfree/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// buildOrTask constructs the or-agreement task: I = binary inputs for two
// processes; O = unanimous binary outputs when agree, all combinations when
// not; Δ = the output must equal the OR of the inputs present in the
// carrier.
func buildOrTask(agree bool) *tasks.Task {
	in := topology.NewComplex()
	out := topology.NewComplex()
	inVal := map[topology.Vertex]string{}
	outVal := map[topology.Vertex]string{}

	addFacet := func(c *topology.Complex, vals map[topology.Vertex]string, prefix string, a, b string) {
		v0 := c.MustAddVertex(prefix+"(P0="+a+")", 0)
		v1 := c.MustAddVertex(prefix+"(P1="+b+")", 1)
		vals[v0], vals[v1] = a, b
		c.MustAddSimplex(v0, v1)
	}
	for _, a := range []string{"0", "1"} {
		for _, b := range []string{"0", "1"} {
			addFacet(in, inVal, "in", a, b)
			if !agree || a == b {
				addFacet(out, outVal, "out", a, b)
			}
		}
	}
	in.Seal()
	out.Seal()

	name := "or-agreement"
	if !agree {
		name = "or-weak"
	}
	return &tasks.Task{
		Name:    name,
		Procs:   2,
		Inputs:  in,
		Outputs: out,
		Allowed: func(input, output []topology.Vertex) bool {
			or := "0"
			own := map[int]string{}
			for _, v := range input {
				if inVal[v] == "1" {
					or = "1"
				}
				own[in.Color(v)] = inVal[v]
			}
			for _, w := range output {
				got := outVal[w]
				if agree {
					// Strict: every output must be the OR of all
					// participating inputs.
					if got != or {
						return false
					}
					continue
				}
				// Weak: each process outputs the OR of some set of inputs
				// it might have seen — anything between its own input and
				// the full OR.
				if got != or && got != own[out.Color(w)] {
					return false
				}
			}
			return true
		},
		InputValue:  func(v topology.Vertex) string { return inVal[v] },
		OutputValue: func(v topology.Vertex) string { return outVal[v] },
	}
}

func run() error {
	strict := buildOrTask(true)
	res, err := solver.SolveUpTo(strict, 2, solver.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("or-agreement (must agree on OR of participating inputs):\n")
	fmt.Printf("  solvable=%v after checking levels 0..%d (%d nodes)\n", res.Solvable, res.Level, res.Nodes)
	fmt.Println("  — unsolvable: a solo 0 must output 0, a solo 1 must output 1, and")
	fmt.Println("    agreement carries the contradiction along the subdivided edge.")

	relaxed := buildOrTask(false)
	res, err = solver.SolveUpTo(relaxed, 2, solver.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("\nweak variant (each decides the OR of inputs it might have seen):\n")
	fmt.Printf("  solvable=%v at level %d\n", res.Solvable, res.Level)
	if res.Solvable {
		if err := solver.VerifyDecisionMap(relaxed, res); err != nil {
			return err
		}
		fmt.Println("  decision map verified: simplicial, color-preserving, Δ-respecting")
	}
	return nil
}
