// The service example reproduces the E6 verdict table over HTTP: it starts
// an in-process engine server (or points at one you already launched with
// `wfrepro serve -addr ...`), asks /v1/solve for the three headline tasks —
// consensus, 2-set consensus, ε-agreement — twice each, and shows the
// content-addressed cache turning the second round of questions into hits.
//
//	go run ./examples/service            # self-hosted, ephemeral port
//	go run ./examples/service -addr localhost:8080
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"waitfree/internal/engine"
	"waitfree/internal/serve"
)

func main() {
	addr := flag.String("addr", "", "address of a running `wfrepro serve` (empty = start one in-process)")
	flag.Parse()

	base := "http://" + *addr
	if *addr == "" {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		s := serve.NewServer(engine.New(engine.Options{}), serve.Options{})
		ready := make(chan string, 1)
		go func() {
			if err := serve.Run(ctx, "127.0.0.1:0", s, ready); err != nil {
				log.Fatal(err)
			}
		}()
		base = "http://" + <-ready
		fmt.Printf("started in-process service at %s\n\n", base)
	}

	queries := []struct {
		label string
		path  string
	}{
		{"consensus (2 procs)", "/v1/solve?family=consensus&procs=2&maxb=2"},
		{"2-set consensus (3 procs)", "/v1/solve?family=set-consensus&procs=3&k=2&maxb=1"},
		{"ε-agreement (ε = 1/2)", "/v1/solve?family=approx-agreement&d=2&maxb=2"},
	}

	fmt.Println("E6 verdict table via /v1/solve (cold, then warm):")
	for round := 1; round <= 2; round++ {
		for _, q := range queries {
			start := time.Now()
			var resp engine.SolveResponse
			getJSON(base+q.path, &resp)
			fmt.Printf("  [round %d] %-28s %-46s %8s\n", round, q.label, resp.Verdict, time.Since(start).Round(time.Microsecond))
		}
	}

	var metrics map[string]any
	getJSON(base+"/metrics", &metrics)
	fmt.Printf("\ncache after both rounds: hits=%v misses=%v deduped=%v\n",
		metrics["cache_hits"], metrics["cache_misses"], metrics["deduped"])
	fmt.Println("the warm round answered every query from the content-addressed store.")
}

func getJSON(url string, v any) {
	body, err := fetchWithRetry(http.DefaultClient, url, maxAttempts,
		time.Sleep, rand.New(rand.NewSource(time.Now().UnixNano())))
	if err != nil {
		log.Fatal(err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		log.Fatalf("%s: %v", url, err)
	}
}

// Retry policy: the service sheds load with 503 (+ Retry-After) when it is
// at capacity or in degraded mode, and those conditions clear on their own —
// exactly the failures worth retrying. 4xx (other than 429) means the query
// itself is wrong and retrying cannot help.
const (
	maxAttempts = 5
	baseDelay   = 100 * time.Millisecond
	maxDelay    = 5 * time.Second
)

// fetchWithRetry GETs url, retrying 429/503 responses and transport errors
// with full-jitter exponential backoff, honoring the server's Retry-After
// hint when present. sleep and rng are parameters so tests can observe the
// chosen delays without waiting them out.
func fetchWithRetry(c *http.Client, url string, attempts int, sleep func(time.Duration), rng *rand.Rand) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			sleep(backoffDelay(attempt-1, lastErr, rng))
		}
		resp, err := c.Get(url)
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		switch resp.StatusCode {
		case http.StatusOK:
			return body, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			lastErr = &retryableError{
				status:     resp.StatusCode,
				retryAfter: resp.Header.Get("Retry-After"),
				body:       string(body),
			}
		default:
			return nil, fmt.Errorf("%s: %d %s", url, resp.StatusCode, body)
		}
	}
	return nil, fmt.Errorf("%s: giving up after %d attempts: %w", url, attempts, lastErr)
}

// retryableError carries the pieces of a 429/503 the backoff needs.
type retryableError struct {
	status     int
	retryAfter string
	body       string
}

func (e *retryableError) Error() string {
	return fmt.Sprintf("%d %s", e.status, e.body)
}

// backoffDelay picks the wait before retry number attempt+1. A Retry-After
// hint from the server wins (it knows its queue and cooldown); otherwise
// full-jitter exponential backoff — uniform in (0, base·2^attempt] — so a
// herd of rejected clients decorrelates instead of returning in lockstep.
// Either way the delay is capped at maxDelay.
func backoffDelay(attempt int, lastErr error, rng *rand.Rand) time.Duration {
	if re, ok := lastErr.(*retryableError); ok {
		if s, err := strconv.Atoi(re.retryAfter); err == nil && s > 0 {
			d := time.Duration(s) * time.Second
			if d > maxDelay {
				d = maxDelay
			}
			return d
		}
	}
	ceil := baseDelay
	for i := 0; i < attempt && ceil < maxDelay; i++ {
		ceil *= 2
	}
	if ceil > maxDelay {
		ceil = maxDelay
	}
	return time.Duration(rng.Int63n(int64(ceil))) + time.Millisecond
}
