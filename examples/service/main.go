// The service example reproduces the E6 verdict table over HTTP: it starts
// an in-process engine server (or points at one you already launched with
// `wfrepro serve -addr ...`), asks /v1/solve for the three headline tasks —
// consensus, 2-set consensus, ε-agreement — twice each, and shows the
// content-addressed cache turning the second round of questions into hits.
//
//	go run ./examples/service            # self-hosted, ephemeral port
//	go run ./examples/service -addr localhost:8080
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"waitfree/internal/engine"
	"waitfree/internal/serve"
)

func main() {
	addr := flag.String("addr", "", "address of a running `wfrepro serve` (empty = start one in-process)")
	flag.Parse()

	base := "http://" + *addr
	if *addr == "" {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		s := serve.NewServer(engine.New(engine.Options{}), serve.Options{})
		ready := make(chan string, 1)
		go func() {
			if err := serve.Run(ctx, "127.0.0.1:0", s, ready); err != nil {
				log.Fatal(err)
			}
		}()
		base = "http://" + <-ready
		fmt.Printf("started in-process service at %s\n\n", base)
	}

	queries := []struct {
		label string
		path  string
	}{
		{"consensus (2 procs)", "/v1/solve?family=consensus&procs=2&maxb=2"},
		{"2-set consensus (3 procs)", "/v1/solve?family=set-consensus&procs=3&k=2&maxb=1"},
		{"ε-agreement (ε = 1/2)", "/v1/solve?family=approx-agreement&d=2&maxb=2"},
	}

	fmt.Println("E6 verdict table via /v1/solve (cold, then warm):")
	for round := 1; round <= 2; round++ {
		for _, q := range queries {
			start := time.Now()
			var resp engine.SolveResponse
			getJSON(base+q.path, &resp)
			fmt.Printf("  [round %d] %-28s %-46s %8s\n", round, q.label, resp.Verdict, time.Since(start).Round(time.Microsecond))
		}
	}

	var metrics map[string]any
	getJSON(base+"/metrics", &metrics)
	fmt.Printf("\ncache after both rounds: hits=%v misses=%v deduped=%v\n",
		metrics["cache_hits"], metrics["cache_misses"], metrics["deduped"])
	fmt.Println("the warm round answered every query from the content-addressed store.")
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: %d %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		log.Fatalf("%s: %v", url, err)
	}
}
