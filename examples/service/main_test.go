package main

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// recordedSleep collects the delays fetchWithRetry chose instead of
// actually waiting them out.
func recordedSleep(delays *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *delays = append(*delays, d) }
}

// TestRetryHonorsRetryAfter: a flaky server that sheds the first two
// attempts with 503 + Retry-After: 2 is retried, the hinted delay is used
// verbatim, and the third attempt's body comes back.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"degraded"}`))
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	var delays []time.Duration
	body, err := fetchWithRetry(ts.Client(), ts.URL, maxAttempts, recordedSleep(&delays), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != `{"ok":true}` {
		t.Fatalf("body = %s", body)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	if len(delays) != 2 || delays[0] != 2*time.Second || delays[1] != 2*time.Second {
		t.Fatalf("delays = %v, want the server's 2s hint twice", delays)
	}
}

// TestRetryJittersWithoutHint: 503s without Retry-After back off with full
// jitter — every delay positive, inside the doubling ceiling, and not all
// identical across seeds (that would be lockstep, the thing jitter exists
// to prevent).
func TestRetryJittersWithoutHint(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"capacity"}`))
	}))
	defer ts.Close()

	firstDelays := map[time.Duration]bool{}
	for seed := int64(1); seed <= 5; seed++ {
		var delays []time.Duration
		_, err := fetchWithRetry(ts.Client(), ts.URL, 4, recordedSleep(&delays), rand.New(rand.NewSource(seed)))
		if err == nil || !strings.Contains(err.Error(), "giving up after 4 attempts") {
			t.Fatalf("seed %d: want give-up error, got %v", seed, err)
		}
		if len(delays) != 3 {
			t.Fatalf("seed %d: %d delays for 4 attempts, want 3", seed, len(delays))
		}
		ceil := baseDelay
		for i, d := range delays {
			if d <= 0 || d > ceil+time.Millisecond {
				t.Fatalf("seed %d: delay[%d] = %v outside (0, %v]", seed, i, d, ceil)
			}
			ceil *= 2
		}
		firstDelays[delays[0]] = true
	}
	if len(firstDelays) < 2 {
		t.Fatalf("5 seeds produced identical first delays %v; jitter is not jittering", firstDelays)
	}
}

// TestRetryGivesUpOn400: a 400 is the client's own fault — no retries, the
// error surfaces immediately with the body attached.
func TestRetryGivesUpOn400(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"estimated cost 427576 facets exceeds budget 100000"}`))
	}))
	defer ts.Close()

	var delays []time.Duration
	_, err := fetchWithRetry(ts.Client(), ts.URL, maxAttempts, recordedSleep(&delays), rand.New(rand.NewSource(1)))
	if err == nil || !strings.Contains(err.Error(), "exceeds budget") {
		t.Fatalf("want the 400 body in the error, got %v", err)
	}
	if calls.Load() != 1 || len(delays) != 0 {
		t.Fatalf("400 must not be retried: calls=%d delays=%v", calls.Load(), delays)
	}
}

// TestRetryOn429: rate-limit responses are retryable just like 503s.
func TestRetryOn429(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	var delays []time.Duration
	body, err := fetchWithRetry(ts.Client(), ts.URL, maxAttempts, recordedSleep(&delays), rand.New(rand.NewSource(1)))
	if err != nil || string(body) != `{"ok":true}` {
		t.Fatalf("got %s, %v", body, err)
	}
	if len(delays) != 1 || delays[0] != time.Second {
		t.Fatalf("delays = %v, want the 1s hint", delays)
	}
}

// TestRetryAfterCapped: an absurd Retry-After hint is capped at maxDelay so
// a confused server cannot park the client for minutes.
func TestRetryAfterCapped(t *testing.T) {
	err := &retryableError{status: 503, retryAfter: "3600"}
	if d := backoffDelay(0, err, rand.New(rand.NewSource(1))); d != maxDelay {
		t.Fatalf("delay = %v, want the %v cap", d, maxDelay)
	}
}
