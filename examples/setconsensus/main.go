// Set consensus: the task that separated resilience levels (§1).
//
// Three things side by side:
//  1. the Proposition 3.1 checker proving (3,2)-set consensus wait-free
//     UNSOLVABLE (no decision map at the checked levels — Sperner's lemma
//     in disguise),
//  2. the f-resilient protocol (f < k) running successfully when at most f
//     processes crash — the positive side of Chaudhuri's conjecture,
//  3. a BG simulation driving the same protocol from fewer simulators.
package main

import (
	"fmt"
	"log"

	"waitfree/internal/bg"
	"waitfree/internal/solver"
	"waitfree/internal/tasks"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The impossibility, via the characterization.
	task := tasks.SetConsensus(3, 2)
	res, err := solver.SolveUpTo(task, 1, solver.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("checker: %s solvable=%v at levels ≤ %d (%d nodes explored)\n",
		task.Name, res.Solvable, res.Level, res.Nodes)

	// 2. The f-resilient protocol, f=1 < k=2 — solvable with waiting.
	inputs := []int{30, 10, 20, 40}
	run1, err := tasks.RunFResilientSetConsensus(inputs, 1, []bool{false, false, true, false})
	if err != nil {
		return err
	}
	if err := tasks.ValidateSetConsensus(inputs, run1, 2); err != nil {
		return err
	}
	fmt.Printf("1-resilient run with one crash: decisions %v (≤ 2 distinct, all inputs)\n", run1.Decisions)

	// 3. BG simulation: 3 simulators, 5 simulated processes, 2-resilient.
	sim := bg.NewSimulation(3, 5, &bg.SetConsensusCode{MProc: 5, F: 2, Inputs: []int{7, 5, 9}})
	bgRes := sim.RunAll([]int{4, -1, -1}) // one simulator crashes (≤ f)
	fmt.Printf("BG simulation with one simulator crash: adopted %v, %d simulated decisions\n",
		bgRes.Adopted, len(bgRes.Simulated))
	return nil
}
