module waitfree

go 1.22
