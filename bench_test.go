// Benchmarks regenerating every experiment of EXPERIMENTS.md (E1–E11), one
// benchmark (family) per paper artifact. Run with:
//
//	go test -bench=. -benchmem ./...
package waitfree_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"waitfree/internal/bg"
	"waitfree/internal/converge"
	"waitfree/internal/core"
	"waitfree/internal/homology"
	"waitfree/internal/modelcheck"
	"waitfree/internal/protocol"
	"waitfree/internal/register"
	"waitfree/internal/sched"
	"waitfree/internal/solver"
	"waitfree/internal/tasks"
	"waitfree/internal/topology"
)

// --- E1: Figure 1, the k-shot protocol on native atomic snapshots ---------

func BenchmarkFig1AtomicSnapshot(b *testing.B) {
	for _, n := range []int{2, 3, 5} {
		b.Run(fmt.Sprintf("n=%d/k=3", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr, err := core.RunKShot(core.NewDirectMemory(n), core.RunConfig{N: n, K: 3})
				if err != nil {
					b.Fatal(err)
				}
				if len(tr.Ops) != n*6 {
					b.Fatal("short trace")
				}
			}
		})
	}
}

// --- E2: Figure 2, the emulation over iterated immediate snapshots --------

func BenchmarkFig2Emulation(b *testing.B) {
	for _, n := range []int{2, 3, 5} {
		b.Run(fmt.Sprintf("n=%d/k=3", n), func(b *testing.B) {
			var memories int
			for i := 0; i < b.N; i++ {
				mem := core.NewEmulatedMemory(n)
				if _, err := core.RunKShot(mem, core.RunConfig{N: n, K: 3}); err != nil {
					b.Fatal(err)
				}
				for _, m := range mem.MemoriesUsed() {
					memories += m
				}
			}
			// One-shot memories consumed per emulated operation (≥ 1; the
			// excess is the price of contention — the paper's "nonblocking"
			// caveat quantified).
			b.ReportMetric(float64(memories)/float64(b.N*n*6), "memories/op")
		})
	}
}

// --- E17: the deterministic scheduler's cost on the Figure-2 emulation -----

// BenchmarkScheduledEmulation measures the Figure-2 emulation on the live Go
// scheduler (the production path, gate checks compiled in but nil) against
// the same run serialized under deterministic adversaries. The live variant
// is the regression guard for the step-point instrumentation: it must stay
// within noise of BenchmarkFig2Emulation.
func BenchmarkScheduledEmulation(b *testing.B) {
	const (
		n = 3
		k = 3
	)
	b.Run("live", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RunKShot(core.NewEmulatedMemory(n), core.RunConfig{N: n, K: k}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, advName := range []string{"round-robin", "random", "priority-inversion"} {
		b.Run(advName, func(b *testing.B) {
			var steps int
			for i := 0; i < b.N; i++ {
				adv, err := sched.NewAdversary(advName, int64(i+1), n)
				if err != nil {
					b.Fatal(err)
				}
				ctl := sched.New(sched.Config{Procs: n, Adversary: adv})
				if _, err := core.RunKShot(core.NewEmulatedMemory(n), core.RunConfig{N: n, K: k, Sched: ctl}); err != nil {
					b.Fatal(err)
				}
				steps += ctl.TotalSteps()
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/run")
		})
	}
}

// BenchmarkEmulationOverhead contrasts E1 and E2 head to head at n=3.
func BenchmarkEmulationOverhead(b *testing.B) {
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RunKShot(core.NewDirectMemory(3), core.RunConfig{N: 3, K: 3}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("emulated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RunKShot(core.NewEmulatedMemory(3), core.RunConfig{N: 3, K: 3}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E3: Lemma 3.2, the one-shot view complex = SDS(sⁿ) --------------------

func BenchmarkOneShotComplex(b *testing.B) {
	for _, n := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vc := protocol.ViewComplex(n, 1)
				if len(vc.Facets()) != topology.CountOrderedPartitions(n+1) {
					b.Fatal("wrong facet count")
				}
			}
		})
	}
}

// --- E4: Lemma 3.3, SDS^b growth -------------------------------------------

func BenchmarkIteratedComplex(b *testing.B) {
	for _, rounds := range []int{1, 2} {
		b.Run(fmt.Sprintf("n=2/b=%d", rounds), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vc := protocol.ViewComplex(2, rounds)
				want := 1
				for j := 0; j < rounds; j++ {
					want *= 13
				}
				if len(vc.Facets()) != want {
					b.Fatal("wrong facet count")
				}
			}
		})
	}
}

func BenchmarkSDSConstruction(b *testing.B) {
	for _, bb := range []int{1, 2} {
		b.Run(fmt.Sprintf("n=2/b=%d", bb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				topology.SDSPow(topology.Simplex(2), bb)
			}
		})
	}
}

// --- E5: Lemma 3.1, the König-tree decision bound ---------------------------

func BenchmarkBoundedSolvability(b *testing.B) {
	decided := func(p, round int, key string) bool { return round >= 2 }
	for i := 0; i < b.N; i++ {
		bound, err := protocol.ExploreDecisionBound(2, decided, 4)
		if err != nil || bound != 2 {
			b.Fatalf("bound=%d err=%v", bound, err)
		}
	}
}

// --- E6: Proposition 3.1, the solvability checker ---------------------------

func BenchmarkSolverConsensus(b *testing.B) {
	task := tasks.Consensus(2)
	for i := 0; i < b.N; i++ {
		res, err := solver.SolveUpTo(task, 2, solver.Options{})
		if err != nil || res.Solvable {
			b.Fatalf("unexpected: %v %v", res.Solvable, err)
		}
	}
}

func BenchmarkSolverSetConsensus(b *testing.B) {
	task := tasks.SetConsensus(3, 2)
	for i := 0; i < b.N; i++ {
		res, err := solver.SolveAtLevel(task, 1, solver.Options{})
		if err != nil || res.Solvable {
			b.Fatalf("unexpected: %v %v", res.Solvable, err)
		}
	}
}

func BenchmarkSolverApprox(b *testing.B) {
	for _, d := range []int{2, 4, 9} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			task := tasks.ApproxAgreement(d)
			for i := 0; i < b.N; i++ {
				res, err := solver.SolveUpTo(task, 2, solver.Options{})
				if err != nil || !res.Solvable {
					b.Fatalf("unexpected: %v %v", res.Solvable, err)
				}
			}
		})
	}
}

// BenchmarkTwoProcExactDecision measures the exact (unbounded-level)
// two-process decision procedure.
func BenchmarkTwoProcExactDecision(b *testing.B) {
	b.Run("consensus", func(b *testing.B) {
		task := tasks.Consensus(2)
		for i := 0; i < b.N; i++ {
			res, err := solver.DecideTwoProcess(task)
			if err != nil || res.Solvable {
				b.Fatalf("unexpected: %v %v", res, err)
			}
		}
	})
	b.Run("approx-27", func(b *testing.B) {
		task := tasks.ApproxAgreement(27)
		for i := 0; i < b.N; i++ {
			res, err := solver.DecideTwoProcess(task)
			if err != nil || !res.Solvable || res.Level != 3 {
				b.Fatalf("unexpected: %+v %v", res, err)
			}
		}
	})
}

// BenchmarkModelCheck measures the exhaustive interleaving exploration of
// the participating-set algorithm (E3's step-level verification).
func BenchmarkModelCheck(b *testing.B) {
	for _, n := range []int{3, 4} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := modelcheck.Explore(n)
				if err != nil {
					b.Fatal(err)
				}
				if res.Outcomes != topology.CountOrderedPartitions(n) {
					b.Fatal("outcome mismatch")
				}
			}
		})
	}
}

// BenchmarkModelCheckEmulation measures the exhaustive IIS-schedule
// verification of the Figure 2 emulation (one shot).
func BenchmarkModelCheckEmulation(b *testing.B) {
	for _, n := range []int{2, 3} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := modelcheck.ExploreEmulation(n, 14)
				if err != nil {
					b.Fatal(err)
				}
				if res.Terminals == 0 {
					b.Fatal("no terminals")
				}
			}
		})
	}
}

// BenchmarkSperner measures panchromatic counting over random Sperner
// labelings of SDS²(s²).
func BenchmarkSperner(b *testing.B) {
	c := topology.SDSPow(topology.Simplex(2), 2)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		label := topology.RandomSpernerLabeling(c, rng)
		n, err := topology.CountPanchromatic(c, label)
		if err != nil || n%2 != 1 {
			b.Fatalf("count=%d err=%v", n, err)
		}
	}
}

// BenchmarkLoopAgreement measures the checker on the Herlihy–Rajsbaum loop
// agreement family (the undecidability gadget): contractible (solvable at
// level 0) vs non-contractible (exhausted at level 1).
func BenchmarkLoopAgreement(b *testing.B) {
	mk := func(hollow bool) *tasks.Task {
		c := topology.NewComplex()
		x := c.MustAddVertex("a", topology.Uncolored)
		y := c.MustAddVertex("b", topology.Uncolored)
		z := c.MustAddVertex("d", topology.Uncolored)
		if hollow {
			c.MustAddSimplex(x, y)
			c.MustAddSimplex(y, z)
			c.MustAddSimplex(x, z)
		} else {
			c.MustAddSimplex(x, y, z)
		}
		c.Seal()
		task, err := tasks.LoopAgreement(c, [3]topology.Vertex{x, y, z},
			[3][]topology.Vertex{{x, y}, {y, z}, {x, z}})
		if err != nil {
			b.Fatal(err)
		}
		return task
	}
	b.Run("contractible", func(b *testing.B) {
		task := mk(false)
		for i := 0; i < b.N; i++ {
			res, err := solver.SolveAtLevel(task, 0, solver.Options{})
			if err != nil || !res.Solvable {
				b.Fatalf("unexpected: %v %v", res.Solvable, err)
			}
		}
	})
	b.Run("noncontractible", func(b *testing.B) {
		task := mk(true)
		for i := 0; i < b.N; i++ {
			res, err := solver.SolveAtLevel(task, 1, solver.Options{})
			if err != nil || res.Solvable {
				b.Fatalf("unexpected: %v %v", res.Solvable, err)
			}
		}
	})
}

// BenchmarkNCSAC measures compiling and running non-chromatic simplex
// agreement over a path complex (§5's NCSAC task).
func BenchmarkNCSAC(b *testing.B) {
	c := topology.NewComplex()
	var vs []topology.Vertex
	for i := 0; i < 3; i++ {
		vs = append(vs, c.MustAddVertex(fmt.Sprintf("a%d", i), topology.Uncolored))
	}
	c.MustAddSimplex(vs[0], vs[1])
	c.MustAddSimplex(vs[1], vs[2])
	c.Seal()

	b.Run("compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := converge.SolveNCSACTwoProcess(c, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	sol, err := converge.SolveNCSACTwoProcess(c, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := converge.RunNCSAC(sol, [2]topology.Vertex{0, 2}, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := converge.ValidateNCSAC(sol, [2]topology.Vertex{0, 2}, out, -1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E7: Theorem 5.1, the convergence map and CSASS -------------------------

func BenchmarkConvergenceMapSearch(b *testing.B) {
	base := topology.Simplex(2)
	a := topology.SDS(base)
	for i := 0; i < b.N; i++ {
		if _, _, err := converge.FindChromaticMap(base, a, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSASSRuntime(b *testing.B) {
	base := topology.Simplex(2)
	a := topology.SDS(base)
	phi, k, err := converge.FindChromaticMap(base, a, 2)
	if err != nil {
		b.Fatal(err)
	}
	all := []topology.Vertex{0, 1, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := converge.RunSimplexAgreement(phi, k, 3, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := converge.ValidateAgreement(a, res, all); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeshComputation builds SDS^b(s²) with its geometric embedding and
// measures the mesh (quantitative Theorem 5.1).
func BenchmarkMeshComputation(b *testing.B) {
	for _, bb := range []int{1, 2} {
		b.Run(fmt.Sprintf("n=2/b=%d", bb), func(b *testing.B) {
			var mesh float64
			for i := 0; i < b.N; i++ {
				c, emb, err := topology.EmbedSDSPow(2, bb)
				if err != nil {
					b.Fatal(err)
				}
				mesh, err = topology.Mesh(c, emb)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(mesh, "mesh")
		})
	}
}

// --- E8: Lemma 5.3, the canonical SDS → Bsd map -----------------------------

func BenchmarkSDSToBsd(b *testing.B) {
	for _, n := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := topology.Simplex(n)
			sds := topology.SDS(s)
			bsd := topology.Bsd(s)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := topology.SDSToBsd(s, sds, bsd)
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Validate(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E9: Lemma 2.2, no holes (GF(2) homology) -------------------------------

func BenchmarkHomologySDS(b *testing.B) {
	cases := []struct {
		name string
		c    *topology.Complex
	}{
		{"SDS(s2)", topology.SDS(topology.Simplex(2))},
		{"SDS2(s2)", topology.SDSPow(topology.Simplex(2), 2)},
		{"SDS(s3)", topology.SDS(topology.Simplex(3))},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !homology.IsAcyclic(tc.c) {
					b.Fatal("hole detected")
				}
			}
		})
	}
}

// --- E10: renaming and f-resilient set consensus ----------------------------

func BenchmarkRenaming(b *testing.B) {
	for _, n := range []int{4, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := tasks.RunRenaming(n, nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				if err := tasks.ValidateRenaming(res, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Renaming through the Figure 2 emulation — a §1 task inside the IIS
	// model.
	b.Run("n=3/emulated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := tasks.RunRenamingOver(core.NewEmulatedMemory(3), 3, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := tasks.ValidateRenaming(res, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFResilientSetConsensus(b *testing.B) {
	inputs := []int{30, 10, 20, 40}
	for i := 0; i < b.N; i++ {
		res, err := tasks.RunFResilientSetConsensus(inputs, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := tasks.ValidateSetConsensus(inputs, res, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E11: the BG simulation --------------------------------------------------

func BenchmarkBGSimulation(b *testing.B) {
	inputs := []int{30, 10, 20}
	for i := 0; i < b.N; i++ {
		sim := bg.NewSimulation(3, 5, &bg.SetConsensusCode{MProc: 5, F: 2, Inputs: inputs})
		res := sim.RunAll(nil)
		for _, d := range res.Adopted {
			if d < 0 {
				b.Fatal("simulator failed to adopt")
			}
		}
	}
}

// --- Substrate micro-benchmarks (context for E1/E2 costs) -------------------

func BenchmarkSnapshotScan(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := register.NewSnapshot[int](n)
			for i := 0; i < n; i++ {
				s.Update(i, i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(s.Scan()) != n {
					b.Fatal("short scan")
				}
			}
		})
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---------------------

// BenchmarkSolverOrderingAblation quantifies the DFS-vs-BFS vertex-ordering
// choice in the solvability checker: BFS interleaves independent subdivided
// edges and thrashes across them (≈30M nodes on ε-agreement 1/9 at level 2),
// DFS keeps chains consecutive (≈10³ nodes).
func BenchmarkSolverOrderingAblation(b *testing.B) {
	task := tasks.ApproxAgreement(4)
	for _, tc := range []struct {
		name  string
		order solver.Order
	}{{"dfs", solver.OrderDFS}, {"bfs", solver.OrderBFS}} {
		b.Run(tc.name, func(b *testing.B) {
			var nodes int64
			for i := 0; i < b.N; i++ {
				res, err := solver.SolveAtLevel(task, 2, solver.Options{Order: tc.order})
				if err != nil || !res.Solvable {
					b.Fatalf("unexpected: %v %v", res.Solvable, err)
				}
				nodes += res.Nodes
			}
			b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
		})
	}
}

// BenchmarkScanAblation contrasts the wait-free Afek et al. scan with the
// naive unbounded double collect, both under adversarial writers. The naive
// scan frequently exhausts its collect budget; the wait-free one never
// exceeds n+2 collects.
func BenchmarkScanAblation(b *testing.B) {
	const n = 8
	run := func(b *testing.B, scan func(s *register.Snapshot[int]) int) {
		s := register.NewSnapshot[int](n)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < n-1; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for u := 0; ; u++ {
					select {
					case <-stop:
						return
					default:
						s.Update(i, u)
					}
				}
			}(i)
		}
		b.ResetTimer()
		var collects int
		for i := 0; i < b.N; i++ {
			collects += scan(s)
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
		b.ReportMetric(float64(collects)/float64(b.N), "collects/op")
	}
	b.Run("waitfree", func(b *testing.B) {
		run(b, func(s *register.Snapshot[int]) int {
			_, c := s.ScanWithStats()
			return c
		})
	})
	b.Run("doublecollect", func(b *testing.B) {
		run(b, func(s *register.Snapshot[int]) int {
			_, c, _ := s.ScanDoubleCollect(64)
			return c
		})
	})
}

func BenchmarkSnapshotUpdate(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := register.NewSnapshot[int](n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Update(0, i)
			}
		})
	}
}
